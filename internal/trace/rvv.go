package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mtvec/internal/isa"
	"mtvec/internal/prog"
)

// RVV-flavoured text trace format ("mtvrvv"), the external-frontend
// counterpart of the binary .mtvt codec. A file carries one dynamic
// instruction per line under RISC-V-vector-style mnemonics, so traces
// generated outside this repository (or by hand) can be replayed
// through the engine, and engine traces can be exported for external
// tooling. docs/BENCHMARKS.md specifies the format with a worked
// example.
//
//	# comment
//	format: mtvrvv/1
//	name: axpy
//	vlen: 128
//	vsetvl a1, 128
//	vle64.v v0, a2 @0x40000000
//	vfmul.vf v1, v0, s1
//	vse64.v v1, a3 @0x40100000
//	beqz a0
//
// Export is canonical: every line is one engine instruction, and
// import(export(t)) replays bit-identically to t (program PCs aside —
// the importer rebuilds the static program one basic block per distinct
// instruction). Import additionally accepts RVV conveniences that have
// no canonical counterpart and are lowered onto the engine's forms:
//
//   - `vsetvli <avl> m<g>` — LMUL-style register grouping: subsequent
//     vector instructions name aligned logical register groups of g
//     architectural registers and operate on up to g*vlen elements; the
//     importer splits them into g per-register instructions, threading
//     the vector-length register through the parts.
//   - a trailing `, vN.t` mask operand — masked execution, lowered to
//     the engine's predicated form (the unmasked op followed by a
//     vmerge with the mask register; for stores the merge precedes the
//     store on the data register).
//   - `vlse64.v`/`vsse64.v` with an explicit byte-stride operand —
//     strided accesses; the importer maintains the architectural
//     vector-stride register, inserting vsetvs instructions exactly
//     when the stride in force must change (unit-stride `vle64.v` /
//     `vse64.v` imply stride 8).
const (
	rvvFormat  = "mtvrvv"
	rvvVersion = 1
)

// maxImportErrors caps how many per-line diagnostics an import collects
// before giving up; they are reported joined, not first-error-only.
const maxImportErrors = 20

// maxRVVVLen bounds the header vlen (mirrors arch.MaxVLen: DynInst.VL
// is uint16 and machines cap register length at 4096 elements).
const maxRVVVLen = 4096

// rvvNames maps engine opcodes to their canonical exported mnemonics.
// Vector memory ops are handled specially (unit-stride and strided
// spellings); everything else round-trips through this table.
var rvvNames = map[isa.Op]string{
	isa.OpNop:      "nop",
	isa.OpMovI:     "li",
	isa.OpAAdd:     "addi",
	isa.OpAShl:     "slli",
	isa.OpSAddI:    "add",
	isa.OpSMulI:    "mul",
	isa.OpSDivI:    "div",
	isa.OpSLogic:   "and",
	isa.OpSShift:   "srli",
	isa.OpSCmp:     "slt",
	isa.OpSAdd:     "fadd.d",
	isa.OpSMul:     "fmul.d",
	isa.OpSDiv:     "fdiv.d",
	isa.OpSSqrt:    "fsqrt.d",
	isa.OpSLoad:    "ld",
	isa.OpSStore:   "sd",
	isa.OpBr:       "beqz",
	isa.OpJmp:      "j",
	isa.OpSetVL:    "vsetvl",
	isa.OpSetVS:    "vsetvs",
	isa.OpVAdd:     "vfadd.vv",
	isa.OpVSub:     "vfsub.vv",
	isa.OpVMul:     "vfmul.vv",
	isa.OpVDiv:     "vfdiv.vv",
	isa.OpVSqrt:    "vfsqrt.v",
	isa.OpVAnd:     "vand.vv",
	isa.OpVOr:      "vor.vv",
	isa.OpVXor:     "vxor.vv",
	isa.OpVShl:     "vsll.v",
	isa.OpVShr:     "vsrl.v",
	isa.OpVCmp:     "vmfgt.vv",
	isa.OpVMerge:   "vmerge.vvm",
	isa.OpVAddS:    "vfadd.vf",
	isa.OpVMulS:    "vfmul.vf",
	isa.OpVRedAdd:  "vfredusum.vs",
	isa.OpVLoad:    "vle64.v",
	isa.OpVStore:   "vse64.v",
	isa.OpVGather:  "vluxei64.v",
	isa.OpVScatter: "vsuxei64.v",
}

// rvvOps is the reverse map, plus import-only aliases.
var rvvOps = func() map[string]isa.Op {
	m := make(map[string]isa.Op, len(rvvNames)+8)
	for op, name := range rvvNames {
		m[name] = op
	}
	// Strided spellings of the vector memory ops (explicit byte stride).
	m["vlse64.v"] = isa.OpVLoad
	m["vsse64.v"] = isa.OpVStore
	// Common aliases external generators use.
	m["vfredosum.vs"] = isa.OpVRedAdd
	m["vloxei64.v"] = isa.OpVGather
	m["vsoxei64.v"] = isa.OpVScatter
	m["fsub.d"] = isa.OpSAdd
	m["sub"] = isa.OpSAddI
	m["or"] = isa.OpSLogic
	m["xor"] = isa.OpSLogic
	m["sll"] = isa.OpSShift
	return m
}()

// ExportRVV writes the trace's dynamic instruction stream as mtvrvv/1
// text: header, then one line per instruction in execution order.
func ExportRVV(w io.Writer, t *Trace) error {
	if t == nil || t.Prog == nil {
		return fmt.Errorf("trace: export: nil trace")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s: RVV-flavoured dynamic vector trace of %q\n", rvvFormat, t.Prog.Name)
	fmt.Fprintf(bw, "format: %s/%d\n", rvvFormat, rvvVersion)
	fmt.Fprintf(bw, "name: %s\n", t.Prog.Name)
	maxVL := t.MaxVL
	if maxVL <= 0 {
		maxVL = isa.MaxVL
	}
	fmt.Fprintf(bw, "vlen: %d\n", maxVL)

	s := prog.NewStreamVL(t.Prog, t.Source(), t.MaxVL)
	var d isa.DynInst
	for s.Next(&d) {
		if err := exportInst(bw, &d); err != nil {
			return err
		}
	}
	if err := s.Err(); err != nil {
		return fmt.Errorf("trace: export: replay failed: %w", err)
	}
	return bw.Flush()
}

func exportInst(bw *bufio.Writer, d *isa.DynInst) error {
	name, ok := rvvNames[d.Op]
	if !ok {
		return fmt.Errorf("trace: export: no mnemonic for opcode %s", d.Op)
	}
	// Strided accesses get the explicit-stride spelling. Indexed
	// (gather/scatter) accesses address element-by-element through the
	// index vector, so the stride register does not apply to them.
	stride := false
	if (d.Op == isa.OpVLoad || d.Op == isa.OpVStore) && d.Stride != isa.ElemBytes {
		stride = true
		if d.Op == isa.OpVLoad {
			name = "vlse64.v"
		} else {
			name = "vsse64.v"
		}
	}
	bw.WriteString(name)
	sep := " "
	writeOp := func(o isa.Operand) {
		if o.Class == isa.ClassNone {
			return
		}
		bw.WriteString(sep)
		sep = ", "
		if o.Class == isa.ClassImm {
			fmt.Fprintf(bw, "%d", d.Imm)
		} else {
			fmt.Fprintf(bw, "%s%d", o.Class, o.Reg)
		}
	}
	writeOp(d.Dst)
	writeOp(d.Src1)
	writeOp(d.Src2)
	switch {
	case d.Op == isa.OpSetVL || d.Op == isa.OpSetVS:
		fmt.Fprintf(bw, "%s%d", sep, d.SetVal)
	case stride:
		fmt.Fprintf(bw, "%s%d", sep, d.Stride)
	}
	if isa.InfoPtr(d.Op).Kind == isa.KindVectorMem || isa.InfoPtr(d.Op).Kind == isa.KindScalarMem {
		fmt.Fprintf(bw, " @0x%x", d.Addr)
	}
	bw.WriteByte('\n')
	return nil
}

// rvvImporter accumulates the reconstructed program and streams while
// tracking the architectural state (VL, VS, grouping) the engine will
// hold at each point of the replay.
type rvvImporter struct {
	t      *Trace
	blocks map[isa.Inst]int32 // static dedup: one block per distinct instruction

	vlen int64 // hardware vector length (header)
	vl   int64 // engine VL register as the replay will see it
	vs   int64 // engine VS register

	lmul int64 // current register grouping (vsetvli), 1 outside groups
	avl  int64 // application vector length of the current grouping

	errs []error
}

// ImportRVV parses an mtvrvv text trace into a replayable Trace,
// validating the result end to end. Parse problems are collected per
// line (up to maxImportErrors of them) and returned joined, so one pass
// reports every diagnosable defect of a hand-written or
// machine-generated trace.
func ImportRVV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	imp := &rvvImporter{
		t:      &Trace{Prog: &prog.Program{Name: "rvv"}},
		blocks: make(map[isa.Inst]int32),
		vlen:   isa.MaxVL,
		lmul:   1,
	}

	lineNo := 0
	sawFormat := false
	sawInst := false
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if key, val, ok := strings.Cut(line, ":"); ok && !strings.Contains(key, " ") {
			key = strings.TrimSpace(key)
			if err := imp.header(key, strings.TrimSpace(val), &sawFormat, sawInst); err != nil {
				if key == "format" {
					// A version/format mismatch makes every later line
					// unparseable noise; fail immediately.
					return nil, fmt.Errorf("trace: rvv: line %d: %w", lineNo, err)
				}
				imp.fail(lineNo, err)
			}
			continue
		}
		if !sawFormat {
			return nil, fmt.Errorf("trace: rvv: line %d: missing %q header (is this an mtvrvv file?)", lineNo, "format: mtvrvv/1")
		}
		sawInst = true
		if err := imp.inst(line); err != nil {
			imp.fail(lineNo, err)
		}
		if len(imp.errs) >= maxImportErrors {
			imp.errs = append(imp.errs, fmt.Errorf("too many errors; giving up"))
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: rvv: reading input: %w", err)
	}
	if !sawFormat {
		return nil, fmt.Errorf("trace: rvv: empty input (missing %q header)", "format: mtvrvv/1")
	}
	if len(imp.errs) > 0 {
		return nil, fmt.Errorf("trace: rvv: %d error(s):\n%w", len(imp.errs), errors.Join(imp.errs...))
	}
	if len(imp.t.BBs) == 0 {
		return nil, fmt.Errorf("trace: rvv: trace has no instructions")
	}
	// End-to-end validation: the reconstructed trace must replay cleanly
	// through the engine's own stream expansion.
	if _, _, err := prog.NewStreamVL(imp.t.Prog, imp.t.Source(), imp.t.MaxVL).Drain(); err != nil {
		return nil, fmt.Errorf("trace: rvv: imported trace does not replay: %w", err)
	}
	return imp.t, nil
}

func (imp *rvvImporter) fail(line int, err error) {
	imp.errs = append(imp.errs, fmt.Errorf("line %d: %w", line, err))
}

func (imp *rvvImporter) header(key, val string, sawFormat *bool, sawInst bool) error {
	if sawInst {
		return fmt.Errorf("header %q after the first instruction", key)
	}
	switch key {
	case "format":
		want := fmt.Sprintf("%s/%d", rvvFormat, rvvVersion)
		if val != want {
			return fmt.Errorf("unsupported format %q (this importer reads %q)", val, want)
		}
		*sawFormat = true
	case "name":
		if val == "" {
			return fmt.Errorf("empty program name")
		}
		imp.t.Prog.Name = val
	case "vlen":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil || n < 1 || n > maxRVVVLen {
			return fmt.Errorf("vlen %q out of range 1..%d", val, maxRVVVLen)
		}
		imp.vlen = n
	default:
		return fmt.Errorf("unknown header %q", key)
	}
	if *sawFormat {
		imp.t.MaxVL = imp.vlen
		imp.vl = imp.vlen
		imp.vs = isa.ElemBytes
	}
	return nil
}

// emit appends one instruction occurrence to the dynamic streams,
// creating its static block on first sight.
func (imp *rvvImporter) emit(in isa.Inst) error {
	bi, ok := imp.blocks[in]
	if !ok {
		if err := in.Validate(); err != nil {
			return err
		}
		bi = int32(len(imp.t.Prog.Blocks))
		imp.t.Prog.Blocks = append(imp.t.Prog.Blocks, prog.BasicBlock{
			Label: in.String(), Insts: []isa.Inst{in},
		})
		imp.blocks[in] = bi
	}
	imp.t.BBs = append(imp.t.BBs, bi)
	return nil
}

// setVL emits a vector-length change, mirroring the engine's clamping.
func (imp *rvvImporter) setVL(reg isa.Operand, v int64) error {
	if err := imp.emit(isa.Inst{Op: isa.OpSetVL, Src1: reg}); err != nil {
		return err
	}
	imp.t.VLs = append(imp.t.VLs, v)
	if v < 1 {
		v = 1
	}
	if v > imp.vlen {
		v = imp.vlen
	}
	imp.vl = v
	return nil
}

// setVS emits a vector-stride change.
func (imp *rvvImporter) setVS(reg isa.Operand, v int64) error {
	if err := imp.emit(isa.Inst{Op: isa.OpSetVS, Src1: reg}); err != nil {
		return err
	}
	imp.t.Strides = append(imp.t.Strides, v)
	imp.vs = v
	return nil
}

// ensureVL/ensureVS insert engine instructions only when the
// architectural state must actually change (register a1 is the
// synthesized loop-control register, matching compiled code).
func (imp *rvvImporter) ensureVL(v int64) error {
	if imp.vl == v {
		return nil
	}
	return imp.setVL(isa.A(1), v)
}

func (imp *rvvImporter) ensureVS(v int64) error {
	if imp.vs == v {
		return nil
	}
	return imp.setVS(isa.A(1), v)
}

// line shape after the mnemonic: register operands in signature order,
// then op-specific extras (immediate / set value / stride), then an
// optional @0x... address, then an optional vN.t mask.
type rvvLine struct {
	regs   []isa.Operand
	nums   []int64
	addr   uint64
	hasA   bool
	mask   isa.Operand
	masked bool
}

func parseRVVOperands(fields []string) (rvvLine, error) {
	var l rvvLine
	for _, f := range fields {
		switch {
		case strings.HasPrefix(f, "@"):
			if l.hasA {
				return l, fmt.Errorf("duplicate address operand %q", f)
			}
			a, err := strconv.ParseUint(strings.TrimPrefix(f, "@"), 0, 64)
			if err != nil {
				return l, fmt.Errorf("bad address %q", f)
			}
			l.addr, l.hasA = a, true
		case strings.HasSuffix(f, ".t"):
			if l.masked {
				return l, fmt.Errorf("duplicate mask operand %q", f)
			}
			m, err := parseReg(strings.TrimSuffix(f, ".t"))
			if err != nil || m.Class != isa.ClassV {
				return l, fmt.Errorf("bad mask operand %q (want vN.t)", f)
			}
			l.mask, l.masked = m, true
		case f[0] == 'a' || f[0] == 's' || f[0] == 'v':
			r, err := parseReg(f)
			if err != nil {
				return l, err
			}
			l.regs = append(l.regs, r)
		default:
			n, err := strconv.ParseInt(f, 0, 64)
			if err != nil {
				return l, fmt.Errorf("bad operand %q", f)
			}
			l.nums = append(l.nums, n)
		}
	}
	return l, nil
}

func parseReg(f string) (isa.Operand, error) {
	if len(f) < 2 {
		return isa.None, fmt.Errorf("bad register %q", f)
	}
	n, err := strconv.ParseUint(f[1:], 10, 8)
	if err != nil {
		return isa.None, fmt.Errorf("bad register %q", f)
	}
	switch f[0] {
	case 'a':
		return isa.A(uint8(n)), nil
	case 's':
		return isa.S(uint8(n)), nil
	case 'v':
		return isa.V(uint8(n)), nil
	}
	return isa.None, fmt.Errorf("bad register class %q", f)
}

func (imp *rvvImporter) inst(line string) error {
	fields := strings.FieldsFunc(line, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t'
	})
	if len(fields) == 0 {
		return fmt.Errorf("unparseable line %q", line)
	}
	mnem := fields[0]

	if mnem == "vsetvli" {
		return imp.vsetvli(fields[1:])
	}
	op, ok := rvvOps[mnem]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnem)
	}
	l, err := parseRVVOperands(fields[1:])
	if err != nil {
		return err
	}

	switch op {
	case isa.OpSetVL, isa.OpSetVS:
		if len(l.regs) != 1 || len(l.nums) != 1 {
			return fmt.Errorf("%s wants a register and a value", mnem)
		}
		if op == isa.OpSetVL {
			imp.lmul, imp.avl = 1, l.nums[0]
			return imp.setVL(l.regs[0], l.nums[0])
		}
		return imp.setVS(l.regs[0], l.nums[0])
	}

	info := isa.InfoPtr(op)
	switch info.Kind {
	case isa.KindVector, isa.KindVectorMem:
		return imp.vectorInst(mnem, op, l)
	}
	// Scalar / control instructions: assemble operands per signature.
	if l.masked {
		return fmt.Errorf("%s cannot take a mask", mnem)
	}
	in := isa.Inst{Op: op}
	regs, nums := l.regs, l.nums
	take := func(o *isa.Operand, imm bool) error {
		if imm {
			if len(nums) == 0 {
				return fmt.Errorf("%s is missing an immediate", mnem)
			}
			*o = isa.Imm()
			in.Imm = nums[0]
			nums = nums[1:]
			return nil
		}
		if len(regs) == 0 {
			return fmt.Errorf("%s is missing a register operand", mnem)
		}
		*o = regs[0]
		regs = regs[1:]
		return nil
	}
	var need [3]struct {
		o   *isa.Operand
		imm bool
	}
	nslot := rvvScalarShape(op, &in, &need)
	for i := 0; i < nslot; i++ {
		if err := take(need[i].o, need[i].imm); err != nil {
			return err
		}
	}
	if len(regs) != 0 || len(nums) != 0 {
		return fmt.Errorf("%s has leftover operands", mnem)
	}
	if info.Kind == isa.KindScalarMem {
		if !l.hasA {
			return fmt.Errorf("%s needs an @0x... address", mnem)
		}
		imp.t.Addrs = append(imp.t.Addrs, l.addr)
	} else if l.hasA {
		return fmt.Errorf("%s cannot take an address", mnem)
	}
	return imp.emit(in)
}

// rvvScalarShape fills the operand-slot plan for a scalar/control
// opcode: which Inst fields are taken, and whether each is an
// immediate. Returns the slot count.
func rvvScalarShape(op isa.Op, in *isa.Inst, need *[3]struct {
	o   *isa.Operand
	imm bool
}) int {
	slot := func(i int, o *isa.Operand, imm bool) {
		need[i].o, need[i].imm = o, imm
	}
	switch op {
	case isa.OpNop, isa.OpJmp:
		return 0
	case isa.OpMovI:
		slot(0, &in.Dst, false)
		slot(1, &in.Src2, true)
		return 2
	case isa.OpAAdd, isa.OpAShl, isa.OpSShift:
		slot(0, &in.Dst, false)
		slot(1, &in.Src1, false)
		slot(2, &in.Src2, true)
		return 3
	case isa.OpSSqrt, isa.OpSLoad:
		slot(0, &in.Dst, false)
		slot(1, &in.Src1, false)
		return 2
	case isa.OpSStore:
		slot(0, &in.Src1, false)
		slot(1, &in.Src2, false)
		return 2
	case isa.OpBr:
		slot(0, &in.Src1, false)
		return 1
	default: // three-register scalar arithmetic
		slot(0, &in.Dst, false)
		slot(1, &in.Src1, false)
		slot(2, &in.Src2, false)
		return 3
	}
}

// vsetvli establishes an LMUL register grouping: following vector
// instructions name logical groups of m registers covering up to
// m*vlen elements.
func (imp *rvvImporter) vsetvli(fields []string) error {
	var avl, m int64 = -1, 1
	for _, f := range fields {
		switch {
		case strings.HasPrefix(f, "m"):
			g, err := strconv.ParseInt(f[1:], 10, 64)
			if err != nil || (g != 1 && g != 2 && g != 4 && g != 8) {
				return fmt.Errorf("bad LMUL %q (want m1/m2/m4/m8)", f)
			}
			m = g
		case strings.HasPrefix(f, "e"):
			if f != "e64" {
				return fmt.Errorf("unsupported element width %q (the engine models e64)", f)
			}
		default:
			n, err := strconv.ParseInt(f, 10, 64)
			if err != nil || n < 1 {
				return fmt.Errorf("bad AVL %q", f)
			}
			avl = n
		}
	}
	if avl < 0 {
		return fmt.Errorf("vsetvli is missing the requested vector length")
	}
	if avl > m*imp.vlen {
		return fmt.Errorf("AVL %d exceeds LMUL x vlen = %d", avl, m*imp.vlen)
	}
	imp.avl, imp.lmul = avl, m
	// Install the first part's VL now, like hardware vsetvli does.
	first := avl
	if first > imp.vlen {
		first = imp.vlen
	}
	return imp.ensureVL(first)
}

// vectorInst lowers one (possibly grouped, possibly masked) vector
// instruction into engine instructions.
func (imp *rvvImporter) vectorInst(mnem string, op isa.Op, l rvvLine) error {
	in := isa.Inst{Op: op}
	regs := l.regs
	take := func(o *isa.Operand) error {
		if len(regs) == 0 {
			return fmt.Errorf("%s is missing a register operand", mnem)
		}
		*o = regs[0]
		regs = regs[1:]
		return nil
	}
	var err error
	switch op {
	case isa.OpVSqrt, isa.OpVShl, isa.OpVShr: // dst, src1
		err = errors.Join(take(&in.Dst), take(&in.Src1))
	case isa.OpVRedAdd: // s-dst, v-src
		err = errors.Join(take(&in.Dst), take(&in.Src1))
	case isa.OpVLoad, isa.OpVGather: // dst, [index,] base
		err = errors.Join(take(&in.Dst), take(&in.Src1))
		if op == isa.OpVGather { // (dst, index V, base A)
			err = errors.Join(err, take(&in.Src2))
		}
	case isa.OpVStore: // data, base
		err = errors.Join(take(&in.Src1), take(&in.Src2))
	case isa.OpVScatter: // data, index
		err = errors.Join(take(&in.Src1), take(&in.Src2))
	default: // dst, src1, src2 (vv and vf forms)
		err = errors.Join(take(&in.Dst), take(&in.Src1), take(&in.Src2))
	}
	if err != nil {
		return err
	}
	if len(regs) != 0 {
		return fmt.Errorf("%s has leftover operands", mnem)
	}

	// Memory shape: address requirement and stride discipline.
	isMem := isa.InfoPtr(op).Kind == isa.KindVectorMem
	indexed := op == isa.OpVGather || op == isa.OpVScatter
	var stride int64
	switch {
	case !isMem:
		if l.hasA {
			return fmt.Errorf("%s cannot take an address", mnem)
		}
		if len(l.nums) != 0 {
			return fmt.Errorf("%s has leftover operands", mnem)
		}
	case indexed:
		if len(l.nums) != 0 {
			return fmt.Errorf("%s cannot take a stride", mnem)
		}
	case mnem == "vlse64.v" || mnem == "vsse64.v":
		if len(l.nums) != 1 {
			return fmt.Errorf("%s wants an explicit byte stride", mnem)
		}
		stride = l.nums[0]
	default:
		if len(l.nums) != 0 {
			return fmt.Errorf("%s does not take a stride (use vlse64.v/vsse64.v)", mnem)
		}
		stride = isa.ElemBytes
	}
	if isMem && !l.hasA {
		return fmt.Errorf("%s needs an @0x... address", mnem)
	}

	// Resolve the grouping: logical group registers must be aligned and
	// the whole group must fit the encoding space.
	g := imp.lmul
	if g > 1 {
		for _, o := range [...]isa.Operand{in.Dst, in.Src1, in.Src2} {
			if o.Class != isa.ClassV {
				continue
			}
			if int64(o.Reg)%g != 0 {
				return fmt.Errorf("register v%d is not aligned to LMUL group m%d", o.Reg, g)
			}
			if int64(o.Reg)+g > isa.VRegLimit {
				return fmt.Errorf("group v%d..v%d exceeds the register space", o.Reg, int64(o.Reg)+g-1)
			}
		}
	}

	// Emit the parts. Part i covers elements [i*vlen, min((i+1)*vlen,
	// avl)); parts past the AVL are empty and emit nothing (RVV tail).
	avl := imp.avl
	if g == 1 && avl <= 0 {
		avl = imp.vl // ungrouped: the VL in force
	}
	for i := int64(0); i < g; i++ {
		partVL := avl - i*imp.vlen
		if partVL <= 0 {
			break
		}
		if partVL > imp.vlen {
			partVL = imp.vlen
		}
		if err := imp.ensureVL(partVL); err != nil {
			return err
		}
		if isMem && !indexed {
			if err := imp.ensureVS(stride); err != nil {
				return err
			}
		}
		part := in
		for _, o := range [...]*isa.Operand{&part.Dst, &part.Src1, &part.Src2} {
			if o.Class == isa.ClassV && g > 1 {
				o.Reg += uint8(i)
			}
		}
		// Masked ops without a vector destination (stores, reductions)
		// predicate the data register before the op; ops that write a
		// vector register merge the result after.
		if l.masked && part.Dst.Class != isa.ClassV {
			if err := imp.maskPart(&part, l.mask); err != nil {
				return err
			}
		}
		if err := imp.emit(part); err != nil {
			return err
		}
		if isMem {
			addr := l.addr
			if !indexed {
				addr += uint64(i * imp.vlen * stride)
			}
			imp.t.Addrs = append(imp.t.Addrs, addr)
		}
		if l.masked && part.Dst.Class == isa.ClassV {
			if err := imp.maskPart(&part, l.mask); err != nil {
				return err
			}
		}
	}
	return nil
}

// maskPart lowers a masked instruction part onto the engine's
// predicated form: a vmerge of the written register with the mask (for
// stores, the merge conceptually gated the data register; the engine's
// timing sees the same extra FU1-class operation either way).
func (imp *rvvImporter) maskPart(part *isa.Inst, mask isa.Operand) error {
	dst := part.Dst
	if dst.Class != isa.ClassV {
		// Stores and reductions have no V destination; predicate the
		// data/source register instead.
		dst = part.Src1
	}
	if dst.Class != isa.ClassV {
		return fmt.Errorf("masked %s has no vector register to predicate", part.Op)
	}
	return imp.emit(isa.Inst{Op: isa.OpVMerge, Dst: dst, Src1: dst, Src2: mask})
}
