package prog

import "mtvec/internal/isa"

// Stats accumulates the dynamic operation counts the paper reports in
// Table 3, plus the per-resource demand totals used for the IDEAL lower
// bound of Figure 10.
type Stats struct {
	ScalarInsts int64 // scalar + control instructions issued
	VectorInsts int64 // vector instructions issued
	VectorOps   int64 // operations performed by vector instructions (ΣVL)

	VectorArithElems  int64 // ΣVL over vector arithmetic (VOPC numerator)
	FU2OnlyArithElems int64 // ΣVL over mul/div/sqrt (must run on FU2)
	VectorMemElems    int64 // ΣVL over vector memory ops (address bus demand)
	ScalarMemRefs     int64 // scalar loads/stores (address bus demand)
	VectorLoadElems   int64
	VectorStoreElems  int64

	PerOp [isa.NumOps]int64 // dynamic instruction count per opcode
}

// Add accounts one dynamic instruction.
func (st *Stats) Add(d *isa.DynInst) {
	st.PerOp[d.Op]++
	info := isa.InfoPtr(d.Op)
	switch info.Kind {
	case isa.KindVector:
		st.VectorInsts++
		st.VectorOps += int64(d.VL)
		if info.Arith {
			st.VectorArithElems += int64(d.VL)
			if d.Op.FU2Only() {
				st.FU2OnlyArithElems += int64(d.VL)
			}
		}
	case isa.KindVectorMem:
		st.VectorInsts++
		st.VectorOps += int64(d.VL)
		st.VectorMemElems += int64(d.VL)
		if info.Load {
			st.VectorLoadElems += int64(d.VL)
		} else {
			st.VectorStoreElems += int64(d.VL)
		}
	default:
		st.ScalarInsts++
		if info.Load || info.Store {
			st.ScalarMemRefs++
		}
	}
}

// Merge adds other into st.
func (st *Stats) Merge(other *Stats) {
	st.ScalarInsts += other.ScalarInsts
	st.VectorInsts += other.VectorInsts
	st.VectorOps += other.VectorOps
	st.VectorArithElems += other.VectorArithElems
	st.FU2OnlyArithElems += other.FU2OnlyArithElems
	st.VectorMemElems += other.VectorMemElems
	st.ScalarMemRefs += other.ScalarMemRefs
	st.VectorLoadElems += other.VectorLoadElems
	st.VectorStoreElems += other.VectorStoreElems
	for i := range st.PerOp {
		st.PerOp[i] += other.PerOp[i]
	}
}

// Insts returns the total dynamic instruction count (decode-slot demand).
func (st *Stats) Insts() int64 { return st.ScalarInsts + st.VectorInsts }

// PctVectorized implements the paper's degree of vectorization: vector
// operations over total operations (vector ops + scalar instructions),
// as a percentage.
func (st *Stats) PctVectorized() float64 {
	tot := st.VectorOps + st.ScalarInsts
	if tot == 0 {
		return 0
	}
	return 100 * float64(st.VectorOps) / float64(tot)
}

// AvgVL returns the average vector length: vector operations per vector
// instruction.
func (st *Stats) AvgVL() float64 {
	if st.VectorInsts == 0 {
		return 0
	}
	return float64(st.VectorOps) / float64(st.VectorInsts)
}

// MemPortDemand returns the total address-bus busy cycles the workload
// requires: one per vector element accessed plus one per scalar reference.
func (st *Stats) MemPortDemand() int64 {
	return st.VectorMemElems + st.ScalarMemRefs
}

// ArithDemand returns the lower bound on cycles the two vector arithmetic
// units need: the FU2-only work cannot be split, the rest balances across
// FU1 and FU2.
func (st *Stats) ArithDemand() int64 {
	half := (st.VectorArithElems + 1) / 2
	if st.FU2OnlyArithElems > half {
		return st.FU2OnlyArithElems
	}
	return half
}

// IdealCycles is the paper's IDEAL bound (Figure 10): the occupancy of the
// most saturated resource, ignoring all dependences and latencies.
func (st *Stats) IdealCycles() int64 {
	b := st.Insts() // decode: one instruction per cycle
	if m := st.MemPortDemand(); m > b {
		b = m
	}
	if a := st.ArithDemand(); a > b {
		b = a
	}
	return b
}
