package prog

import "fmt"

// SliceSource is a TraceSource backed by in-memory slices. It is the
// reference implementation used by tests and by the trace replayer's
// buffered decoding.
type SliceSource struct {
	BBs     []int
	VLs     []int64
	Strides []int64
	Addrs   []uint64

	bi, vi, si, ai int
	err            error
}

// NextBB implements TraceSource.
func (s *SliceSource) NextBB() (int, bool) {
	if s.err != nil || s.bi >= len(s.BBs) {
		return 0, false
	}
	b := s.BBs[s.bi]
	s.bi++
	return b, true
}

// NextVL implements TraceSource.
func (s *SliceSource) NextVL() int64 {
	if s.vi >= len(s.VLs) {
		s.fail("vector-length")
		return 1
	}
	v := s.VLs[s.vi]
	s.vi++
	return v
}

// NextStride implements TraceSource.
func (s *SliceSource) NextStride() int64 {
	if s.si >= len(s.Strides) {
		s.fail("stride")
		return 0
	}
	v := s.Strides[s.si]
	s.si++
	return v
}

// NextAddr implements TraceSource.
func (s *SliceSource) NextAddr() uint64 {
	if s.ai >= len(s.Addrs) {
		s.fail("address")
		return 0
	}
	v := s.Addrs[s.ai]
	s.ai++
	return v
}

func (s *SliceSource) fail(stream string) {
	if s.err == nil {
		s.err = fmt.Errorf("prog: %s trace exhausted before basic-block trace", stream)
	}
}

// Err implements TraceSource.
func (s *SliceSource) Err() error { return s.err }
