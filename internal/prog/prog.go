// Package prog represents static programs (basic blocks of ISA
// instructions) and their expansion into dynamic instruction streams.
//
// The expansion mirrors the paper's Dixie methodology (Section 4.1): a
// static program plus four trace streams — the basic-block trace, the
// vector-length trace, the vector-stride trace and the memory-address
// trace — fully determine the dynamic instruction stream a simulator
// consumes. Package trace serializes the four streams; package workload
// synthesizes them.
package prog

import (
	"fmt"

	"mtvec/internal/isa"
)

// BasicBlock is a straight-line sequence of instructions.
type BasicBlock struct {
	Label string
	Insts []isa.Inst
}

// Program is a named static program: a list of basic blocks. Control flow
// between blocks is not encoded statically; the basic-block trace carries
// the executed block sequence, exactly as Dixie traces did.
type Program struct {
	Name   string
	Blocks []BasicBlock

	pcBase []uint32 // first PC of each block; built lazily
}

// Validate checks every instruction in every block.
func (p *Program) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("prog: program has no name")
	}
	if len(p.Blocks) == 0 {
		return fmt.Errorf("prog: %s: no basic blocks", p.Name)
	}
	for bi, b := range p.Blocks {
		if len(b.Insts) == 0 {
			return fmt.Errorf("prog: %s: block %d (%s) is empty", p.Name, bi, b.Label)
		}
		for ii, in := range b.Insts {
			if err := in.Validate(); err != nil {
				return fmt.Errorf("prog: %s: block %d (%s) inst %d: %w", p.Name, bi, b.Label, ii, err)
			}
		}
	}
	return nil
}

// NumInsts returns the static instruction count.
func (p *Program) NumInsts() int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Insts)
	}
	return n
}

// PCBase returns the PC of the first instruction of block bi.
func (p *Program) PCBase(bi int) uint32 {
	if p.pcBase == nil {
		p.pcBase = make([]uint32, len(p.Blocks))
		var pc uint32
		for i, b := range p.Blocks {
			p.pcBase[i] = pc
			pc += uint32(len(b.Insts))
		}
	}
	return p.pcBase[bi]
}

// BlockIndex returns the index of the block with the given label, or -1.
func (p *Program) BlockIndex(label string) int {
	for i, b := range p.Blocks {
		if b.Label == label {
			return i
		}
	}
	return -1
}

// TraceSource supplies the four dynamic streams during expansion. A source
// either synthesizes values (workloads) or replays a trace file.
//
// NextBB returns false at end of trace; the other methods are called only
// as demanded by the instructions of the traced blocks, in program order.
// Implementations report read/decode failures through Err; a failing
// source must end the basic-block stream.
type TraceSource interface {
	NextBB() (int, bool)
	NextVL() int64
	NextStride() int64
	NextAddr() uint64
	Err() error
}
