package prog

import (
	"fmt"

	"mtvec/internal/isa"
)

// Stream expands a static program against a TraceSource into the dynamic
// instruction stream. It maintains the architectural vector-length and
// vector-stride registers: SetVL/SetVS instructions install values drawn
// from the VL/stride traces, and subsequent vector instructions execute
// under them, exactly as on the traced machine.
//
// A Stream is single-use; create a new one (with a fresh TraceSource) to
// restart a program.
type Stream struct {
	prog *Program
	src  TraceSource

	vl int64 // architectural vector length register
	vs int64 // architectural vector stride register (bytes)

	bb    int
	idx   int
	inBB  bool
	count int64

	err error
}

// NewStream creates a dynamic stream for p fed by src. The VL register
// resets to MaxVL and the stride register to one element, the conventional
// initial state.
func NewStream(p *Program, src TraceSource) *Stream {
	return &Stream{prog: p, src: src, vl: isa.MaxVL, vs: isa.ElemBytes}
}

// Program returns the static program this stream expands.
func (s *Stream) Program() *Program { return s.prog }

// Count returns the number of dynamic instructions delivered so far.
func (s *Stream) Count() int64 { return s.count }

// Err returns the first error encountered (bad block index, failing
// source). A stream that ends with Err() == nil ended normally.
func (s *Stream) Err() error {
	if s.err != nil {
		return s.err
	}
	return s.src.Err()
}

// Next fills d with the next dynamic instruction, reporting false at end
// of trace. d is fully overwritten.
func (s *Stream) Next(d *isa.DynInst) bool {
	if s.err != nil {
		return false
	}
	for !s.inBB || s.idx >= len(s.prog.Blocks[s.bb].Insts) {
		bb, ok := s.src.NextBB()
		if !ok {
			return false
		}
		if bb < 0 || bb >= len(s.prog.Blocks) {
			s.err = fmt.Errorf("prog: %s: trace names block %d of %d", s.prog.Name, bb, len(s.prog.Blocks))
			return false
		}
		s.bb, s.idx, s.inBB = bb, 0, true
	}

	in := s.prog.Blocks[s.bb].Insts[s.idx]
	*d = isa.DynInst{Inst: in, PC: s.prog.PCBase(s.bb) + uint32(s.idx)}
	s.idx++
	s.count++

	switch isa.InfoOf(in.Op).Kind {
	case isa.KindVLVS:
		if in.Op == isa.OpSetVL {
			v := s.src.NextVL()
			if v < 1 {
				v = 1
			}
			if v > isa.MaxVL {
				v = isa.MaxVL
			}
			s.vl = v
			d.SetVal = s.vl
		} else {
			s.vs = s.src.NextStride()
			d.SetVal = s.vs
		}
	case isa.KindVector:
		d.VL = uint16(s.vl)
	case isa.KindVectorMem:
		d.VL = uint16(s.vl)
		d.Stride = s.vs
		d.Addr = s.src.NextAddr()
	case isa.KindScalarMem:
		d.Addr = s.src.NextAddr()
	}
	return true
}

// Drain consumes the rest of the stream, returning the number of dynamic
// instructions seen and accumulated statistics.
func (s *Stream) Drain() (int64, Stats, error) {
	var st Stats
	var d isa.DynInst
	var n int64
	for s.Next(&d) {
		st.Add(&d)
		n++
	}
	return n, st, s.Err()
}
