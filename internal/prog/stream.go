package prog

import (
	"fmt"

	"mtvec/internal/isa"
)

// Stream expands a static program against a TraceSource into the dynamic
// instruction stream. It maintains the architectural vector-length and
// vector-stride registers: SetVL/SetVS instructions install values drawn
// from the VL/stride traces, and subsequent vector instructions execute
// under them, exactly as on the traced machine.
//
// A Stream is single-use; create a new one (with a fresh TraceSource) to
// restart a program.
//
// A Stream has two replay modes: expanding a static program against a
// TraceSource instruction by instruction (NewStream), or indexing a
// predecoded dynamic instruction slice (NewDecodedStream) — the hot-path
// form trace.Trace caches so repeated replays skip the per-instruction
// decode entirely. Both modes deliver bit-identical DynInst sequences.
type Stream struct {
	prog *Program
	src  TraceSource

	// dec, when non-nil, selects the predecoded replay mode: NextDec
	// hands out successive entries instead of expanding the program.
	dec []DecodedInst
	di  int

	// buf backs NextDec in source-driven mode.
	buf DecodedInst

	vl    int64 // architectural vector length register
	vs    int64 // architectural vector stride register (bytes)
	maxVL int64 // hardware vector length: SetVL values clamp to it

	bb    int
	idx   int
	inBB  bool
	count int64

	// Current-block cache: insts and pcBase mirror Blocks[bb] so the
	// per-instruction path needs no repeated double indexing.
	insts  []isa.Inst
	pcBase uint32

	err error
}

// NewStream creates a dynamic stream for p fed by src. The VL register
// resets to the hardware vector length (isa.MaxVL, the reference
// machine's) and the stride register to one element, the conventional
// initial state.
func NewStream(p *Program, src TraceSource) *Stream {
	return NewStreamVL(p, src, 0)
}

// NewStreamVL is NewStream for a machine whose vector registers hold
// maxVL elements: the VL register resets to maxVL and SetVL values clamp
// to it, exactly as the traced machine would have executed them. maxVL
// <= 0 selects the reference isa.MaxVL.
func NewStreamVL(p *Program, src TraceSource, maxVL int64) *Stream {
	if maxVL <= 0 {
		maxVL = isa.MaxVL
	}
	return &Stream{prog: p, src: src, vl: maxVL, maxVL: maxVL, vs: isa.ElemBytes}
}

// DecodedInst is a dynamic instruction plus its precomputed static
// decode: the dispatch-relevant opcode properties and the vector source
// registers. Simulators consume these via Stream.NextDec without
// recomputing either per dispatch; entries of a predecoded slice are
// shared and immutable. The struct is deliberately pointer-free so
// megabytes of predecoded instructions cost the garbage collector
// nothing to scan.
type DecodedInst struct {
	isa.DynInst
	Kind  isa.Kind // dispatch classification of Op
	FU1OK bool     // vector arithmetic may run on FU1
	Load  bool     // reads memory
	NVSrc uint8    // number of vector source registers
	VSrcs [2]uint8 // vector source registers (store data, indices)
}

// decodeAux fills the precomputed decode fields from the DynInst. It
// zeroes the unused VSrcs slots so entries are canonical values even
// when the receiver is a reused buffer (DecodeAll, NextDec): two equal
// dynamic instructions always decode to byte-equal DecodedInsts.
func (d *DecodedInst) decodeAux() {
	info := isa.InfoPtr(d.Op)
	d.Kind = info.Kind
	d.FU1OK = info.FU1OK
	d.Load = info.Load
	d.VSrcs = [2]uint8{}
	d.NVSrc = uint8(d.Inst.VSources(&d.VSrcs))
}

// NewDecodedStream creates a stream replaying a predecoded dynamic
// instruction sequence (as produced by DecodeAll). The slice is read,
// never written; one slice can back any number of concurrent streams.
// p records the static program for Program() and may be nil.
func NewDecodedStream(p *Program, insts []DecodedInst) *Stream {
	return &Stream{prog: p, dec: insts}
}

// DecodeAll drains a fresh source-driven stream of p into a predecoded
// instruction slice of length capacity hint n. It returns the slice and
// the stream's terminal error, if any.
func DecodeAll(p *Program, src TraceSource, n int64) ([]DecodedInst, error) {
	return DecodeAllVL(p, src, n, 0)
}

// DecodeAllVL is DecodeAll at the given hardware vector length (see
// NewStreamVL); maxVL <= 0 selects the reference isa.MaxVL.
func DecodeAllVL(p *Program, src TraceSource, n, maxVL int64) ([]DecodedInst, error) {
	if n < 0 {
		n = 0
	}
	dec := make([]DecodedInst, 0, n)
	s := NewStreamVL(p, src, maxVL)
	var d DecodedInst
	for s.Next(&d.DynInst) {
		d.decodeAux()
		dec = append(dec, d)
	}
	return dec, s.Err()
}

// Program returns the static program this stream expands.
func (s *Stream) Program() *Program { return s.prog }

// Count returns the number of dynamic instructions delivered so far.
func (s *Stream) Count() int64 { return s.count }

// Err returns the first error encountered (bad block index, failing
// source). A stream that ends with Err() == nil ended normally.
func (s *Stream) Err() error {
	if s.err != nil {
		return s.err
	}
	if s.src == nil {
		return nil
	}
	return s.src.Err()
}

// NextDec returns the next instruction with its precomputed decode, or
// nil at end of trace. The returned value is valid until the following
// NextDec call: predecoded replays hand out shared immutable entries,
// source-driven replays reuse an internal buffer. Callers must not
// mutate it.
func (s *Stream) NextDec() *DecodedInst {
	if s.dec != nil {
		if s.di >= len(s.dec) {
			return nil
		}
		d := &s.dec[s.di]
		s.di++
		s.count++
		return d
	}
	if !s.Next(&s.buf.DynInst) {
		return nil
	}
	s.buf.decodeAux()
	return &s.buf
}

// Next fills d with the next dynamic instruction, reporting false at end
// of trace. d is fully overwritten.
func (s *Stream) Next(d *isa.DynInst) bool {
	if s.dec != nil {
		if s.di >= len(s.dec) {
			return false
		}
		*d = s.dec[s.di].DynInst
		s.di++
		s.count++
		return true
	}
	if s.err != nil {
		return false
	}
	for !s.inBB || s.idx >= len(s.insts) {
		bb, ok := s.src.NextBB()
		if !ok {
			return false
		}
		if bb < 0 || bb >= len(s.prog.Blocks) {
			s.err = fmt.Errorf("prog: %s: trace names block %d of %d", s.prog.Name, bb, len(s.prog.Blocks))
			return false
		}
		s.bb, s.idx, s.inBB = bb, 0, true
		s.insts = s.prog.Blocks[bb].Insts
		s.pcBase = s.prog.PCBase(bb)
	}

	in := s.insts[s.idx]
	*d = isa.DynInst{Inst: in, PC: s.pcBase + uint32(s.idx)}
	s.idx++
	s.count++

	switch isa.KindOf(in.Op) {
	case isa.KindVLVS:
		if in.Op == isa.OpSetVL {
			v := s.src.NextVL()
			if v < 1 {
				v = 1
			}
			if v > s.maxVL {
				v = s.maxVL
			}
			s.vl = v
			d.SetVal = s.vl
		} else {
			s.vs = s.src.NextStride()
			d.SetVal = s.vs
		}
	case isa.KindVector:
		d.VL = uint16(s.vl)
	case isa.KindVectorMem:
		d.VL = uint16(s.vl)
		d.Stride = s.vs
		d.Addr = s.src.NextAddr()
	case isa.KindScalarMem:
		d.Addr = s.src.NextAddr()
	}
	return true
}

// Drain consumes the rest of the stream, returning the number of dynamic
// instructions seen and accumulated statistics.
func (s *Stream) Drain() (int64, Stats, error) {
	var st Stats
	var d isa.DynInst
	var n int64
	for s.Next(&d) {
		st.Add(&d)
		n++
	}
	return n, st, s.Err()
}
