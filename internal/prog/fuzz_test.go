package prog

import (
	"testing"

	"mtvec/internal/isa"
)

// fuzzProgram covers every dynamic-expansion path Stream.Next has: VL/VS
// installs, vector arithmetic (FU1-eligible and FU2-only), vector and
// scalar memory, gather/scatter (two vector sources), reductions and
// plain scalar/branch work.
func fuzzProgram() *Program {
	return &Program{
		Name: "fuzz-mix",
		Blocks: []BasicBlock{
			{Label: "head", Insts: []isa.Inst{
				{Op: isa.OpSetVS, Src1: isa.A(0)},
				{Op: isa.OpSetVL, Src1: isa.A(1)},
			}},
			{Label: "body", Insts: []isa.Inst{
				{Op: isa.OpVLoad, Dst: isa.V(0), Src1: isa.A(2)},
				{Op: isa.OpVMul, Dst: isa.V(1), Src1: isa.V(0), Src2: isa.V(0)},
				{Op: isa.OpVAdd, Dst: isa.V(2), Src1: isa.V(1), Src2: isa.V(0)},
				{Op: isa.OpVStore, Src1: isa.V(2), Src2: isa.A(3)},
				{Op: isa.OpSAddI, Dst: isa.A(2), Src1: isa.A(2), Src2: isa.A(4)},
				{Op: isa.OpBr, Src1: isa.S(0)},
			}},
			{Label: "sparse", Insts: []isa.Inst{
				{Op: isa.OpVGather, Dst: isa.V(3), Src1: isa.A(5), Src2: isa.V(0)},
				{Op: isa.OpVScatter, Src1: isa.V(3), Src2: isa.V(0)},
				{Op: isa.OpVRedAdd, Dst: isa.S(1), Src1: isa.V(3)},
				{Op: isa.OpSLoad, Dst: isa.S(2), Src1: isa.A(7)},
				{Op: isa.OpSStore, Src1: isa.S(2), Src2: isa.A(7)},
			}},
			{Label: "revl", Insts: []isa.Inst{
				{Op: isa.OpSetVL, Src1: isa.A(1)},
				{Op: isa.OpVSqrt, Dst: isa.V(4), Src1: isa.V(2)},
			}},
		},
	}
}

// fuzzSource maps fuzz bytes onto the four trace streams. The mapping is
// deliberately permissive: block indices may fall outside the program
// (including -1) and the VL/stride/address streams may run short of what
// the block trace demands, steering the fuzzer into every Stream error
// path as well as the happy one. Two calls on the same bytes build
// identical sources, which is what lets the harness replay a trace twice.
func fuzzSource(data []byte, blocks int) *SliceSource {
	s := &SliceSource{}
	if len(data) == 0 {
		return s
	}
	nbb := int(data[0] % 64)
	data = data[1:]
	if nbb > len(data) {
		nbb = len(data)
	}
	for _, b := range data[:nbb] {
		s.BBs = append(s.BBs, int(b)%(blocks+2)-1)
	}
	rest := data[nbb:]
	for i := 0; i+1 < len(rest); i += 2 {
		hi, lo := rest[i], rest[i+1]
		switch (i / 2) % 3 {
		case 0:
			s.VLs = append(s.VLs, int64(hi)<<8|int64(lo)-128)
		case 1:
			s.Strides = append(s.Strides, int64(int8(hi))*int64(lo))
		case 2:
			s.Addrs = append(s.Addrs, uint64(hi)<<12|uint64(lo)<<3)
		}
	}
	return s
}

// FuzzDecode fuzzes the trace-expansion pipeline: arbitrary bytes become
// a SliceSource over fuzzProgram, predecoded by DecodeAllVL. The
// properties under test:
//
//   - expansion never panics, whatever the trace holds — out-of-range
//     block indices, exhausted value streams, degenerate VLs and
//     strides must all surface as Stream errors;
//   - the predecoded slice replayed through NewDecodedStream delivers a
//     DynInst sequence bit-identical to a fresh source-driven stream
//     over the same bytes, with the same terminal error — the
//     stream.go contract the trace cache and the batch engine lean on;
//   - every DecodedInst's cached decode fields agree with the ISA
//     tables for its opcode.
func FuzzDecode(f *testing.F) {
	// Seeds shaped like the suite's synthesized traces: a VL/VS header
	// then looped bodies, a sparse block, a mid-trace VL change, plus
	// degenerate shapes (empty, truncated values, bad block index).
	f.Add([]byte{3, 1, 2, 2, 0, 100, 0, 16, 0x10, 0x00, 0, 100, 0, 8, 0x14, 0x00}, int64(0))
	f.Add([]byte{6, 1, 2, 3, 4, 2, 2, 0, 128, 1, 8, 0x20, 0x00, 1, 0, 2, 64, 0x30, 0x00, 0x11, 0x22}, int64(128))
	f.Add([]byte{2, 1, 2, 0, 7}, int64(4096))      // value streams run dry
	f.Add([]byte{1, 0}, int64(1))                  // trace names block -1
	f.Add([]byte{1, 5, 9, 9}, int64(0))            // trace names a block past the end
	f.Add([]byte{}, int64(0))                      // empty trace
	f.Add([]byte{63, 2, 2, 2, 2, 2, 2}, int64(-7)) // nbb longer than data; maxVL <= 0

	f.Fuzz(func(t *testing.T, data []byte, maxVL int64) {
		p := fuzzProgram()
		blocks := len(p.Blocks)

		dec, decErr := DecodeAllVL(p, fuzzSource(data, blocks), int64(len(data)), maxVL)

		// A fresh source-driven stream over the same bytes must deliver
		// the identical sequence and terminal error.
		live := NewStreamVL(p, fuzzSource(data, blocks), maxVL)
		var d isa.DynInst
		for i := 0; ; i++ {
			if !live.Next(&d) {
				if i != len(dec) {
					t.Fatalf("source-driven stream ended at %d, predecode holds %d", i, len(dec))
				}
				break
			}
			if i >= len(dec) {
				t.Fatalf("source-driven stream outran the %d predecoded instructions", len(dec))
			}
			if d != dec[i].DynInst {
				t.Fatalf("inst %d: source-driven %+v != predecoded %+v", i, d, dec[i].DynInst)
			}
		}
		liveErr := live.Err()
		if (decErr == nil) != (liveErr == nil) ||
			(decErr != nil && decErr.Error() != liveErr.Error()) {
			t.Fatalf("terminal errors diverge: predecode %v, source-driven %v", decErr, liveErr)
		}

		// Predecoded replay hands back the same sequence again, and the
		// cached decode fields agree with the ISA tables.
		replay := NewDecodedStream(p, dec)
		for i := range dec {
			rd := replay.NextDec()
			if rd == nil {
				t.Fatalf("predecoded replay ended early at %d of %d", i, len(dec))
			}
			if rd.DynInst != dec[i].DynInst {
				t.Fatalf("inst %d: replay %+v != predecode %+v", i, rd.DynInst, dec[i].DynInst)
			}
			info := isa.InfoOf(dec[i].Op)
			if dec[i].Kind != info.Kind || dec[i].FU1OK != info.FU1OK || dec[i].Load != info.Load {
				t.Fatalf("inst %d (%s): cached decode fields disagree with ISA table", i, dec[i].Op)
			}
			var vs [2]uint8
			if n := dec[i].Inst.VSources(&vs); int(dec[i].NVSrc) != n || vs != dec[i].VSrcs {
				t.Fatalf("inst %d (%s): cached vector sources %d/%v, want %d/%v",
					i, dec[i].Op, dec[i].NVSrc, dec[i].VSrcs, n, vs)
			}
		}
		if replay.NextDec() != nil {
			t.Fatal("predecoded replay ran past its slice")
		}
	})
}
