package prog

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mtvec/internal/isa"
)

func dyn(op isa.Op, vl uint16) *isa.DynInst {
	d := &isa.DynInst{VL: vl}
	d.Op = op
	return d
}

func TestStatsAccounting(t *testing.T) {
	var st Stats
	st.Add(dyn(isa.OpVAdd, 100))  // arith, FU1-capable
	st.Add(dyn(isa.OpVMul, 50))   // arith, FU2-only
	st.Add(dyn(isa.OpVLoad, 80))  // memory
	st.Add(dyn(isa.OpVStore, 80)) // memory
	st.Add(dyn(isa.OpSAddI, 0))   // scalar
	st.Add(dyn(isa.OpSLoad, 0))   // scalar memory
	st.Add(dyn(isa.OpBr, 0))      // control counts as scalar
	st.Add(dyn(isa.OpSetVL, 0))   // VL update counts as scalar

	if st.VectorInsts != 4 || st.ScalarInsts != 4 {
		t.Fatalf("insts: %+v", st)
	}
	if st.VectorOps != 310 {
		t.Fatalf("VectorOps = %d, want 310", st.VectorOps)
	}
	if st.VectorArithElems != 150 || st.FU2OnlyArithElems != 50 {
		t.Fatalf("arith: %d fu2only: %d", st.VectorArithElems, st.FU2OnlyArithElems)
	}
	if st.VectorMemElems != 160 || st.ScalarMemRefs != 1 {
		t.Fatalf("mem: %d scalar: %d", st.VectorMemElems, st.ScalarMemRefs)
	}
	if st.VectorLoadElems != 80 || st.VectorStoreElems != 80 {
		t.Fatalf("load/store elems: %d/%d", st.VectorLoadElems, st.VectorStoreElems)
	}
	if st.Insts() != 8 {
		t.Fatalf("Insts = %d", st.Insts())
	}
	if st.MemPortDemand() != 161 {
		t.Fatalf("MemPortDemand = %d", st.MemPortDemand())
	}
}

func TestPctVectorizedMatchesPaperDefinition(t *testing.T) {
	// swm256 row of Table 3: 6.2M scalar instructions, 9534.3M vector
	// operations -> 99.9 % vectorized.
	var st Stats
	st.ScalarInsts = 6_200_000
	st.VectorOps = 9_534_300_000
	st.VectorInsts = 74_500_000
	if pct := st.PctVectorized(); pct < 99.9 || pct > 99.95 {
		t.Fatalf("PctVectorized = %f, want ~99.93", pct)
	}
	if avl := st.AvgVL(); avl < 127 || avl > 129 {
		t.Fatalf("AvgVL = %f, want ~128", avl)
	}
}

func TestStatsZeroDivision(t *testing.T) {
	var st Stats
	if st.PctVectorized() != 0 || st.AvgVL() != 0 {
		t.Fatal("empty stats should report zeros")
	}
}

func TestArithDemand(t *testing.T) {
	var st Stats
	st.VectorArithElems = 1000
	st.FU2OnlyArithElems = 100
	if st.ArithDemand() != 500 {
		t.Fatalf("balanced demand = %d, want 500", st.ArithDemand())
	}
	st.FU2OnlyArithElems = 900 // FU2 is the bottleneck
	if st.ArithDemand() != 900 {
		t.Fatalf("FU2-bound demand = %d, want 900", st.ArithDemand())
	}
}

func TestIdealCyclesIsMaxOfDemands(t *testing.T) {
	var st Stats
	st.ScalarInsts = 10
	st.VectorInsts = 5
	st.VectorMemElems = 400
	st.VectorArithElems = 300
	if got := st.IdealCycles(); got != 400 {
		t.Fatalf("IdealCycles = %d, want 400 (memory-bound)", got)
	}
	st.VectorArithElems = 2000
	if got := st.IdealCycles(); got != 1000 {
		t.Fatalf("IdealCycles = %d, want 1000 (arith-bound)", got)
	}
}

func TestMergeEqualsSequentialAdd(t *testing.T) {
	// Property: splitting a dynamic stream at any point and merging the
	// two halves' stats equals accumulating the whole stream.
	ops := []isa.Op{isa.OpVAdd, isa.OpVMul, isa.OpVLoad, isa.OpVStore, isa.OpSAddI, isa.OpSLoad, isa.OpBr}
	f := func(seed int64, split uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 50
		k := int(split) % n
		var whole, a, b Stats
		for i := 0; i < n; i++ {
			d := dyn(ops[r.Intn(len(ops))], uint16(r.Intn(isa.MaxVL)+1))
			whole.Add(d)
			if i < k {
				a.Add(d)
			} else {
				b.Add(d)
			}
		}
		a.Merge(&b)
		return a == whole
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
