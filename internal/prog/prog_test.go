package prog

import (
	"strings"
	"testing"

	"mtvec/internal/isa"
)

// testProgram builds a two-block program: a header that sets VL/VS and a
// body with a load, an add, and a store.
func testProgram() *Program {
	return &Program{
		Name: "axpy-lite",
		Blocks: []BasicBlock{
			{Label: "head", Insts: []isa.Inst{
				{Op: isa.OpSetVS, Src1: isa.A(0)},
				{Op: isa.OpSetVL, Src1: isa.A(1)},
			}},
			{Label: "body", Insts: []isa.Inst{
				{Op: isa.OpVLoad, Dst: isa.V(0), Src1: isa.A(2)},
				{Op: isa.OpVAdd, Dst: isa.V(1), Src1: isa.V(0), Src2: isa.V(0)},
				{Op: isa.OpVStore, Src1: isa.V(1), Src2: isa.A(3)},
				{Op: isa.OpSAddI, Dst: isa.A(2), Src1: isa.A(2), Src2: isa.A(4)},
				{Op: isa.OpBr, Src1: isa.S(0)},
			}},
		},
	}
}

func TestValidateGoodProgram(t *testing.T) {
	if err := testProgram().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		p    *Program
		want string
	}{
		{"unnamed", &Program{Blocks: []BasicBlock{{Label: "b", Insts: []isa.Inst{{Op: isa.OpNop}}}}}, "no name"},
		{"empty", &Program{Name: "x"}, "no basic blocks"},
		{"emptyblock", &Program{Name: "x", Blocks: []BasicBlock{{Label: "b"}}}, "is empty"},
		{"badinst", &Program{Name: "x", Blocks: []BasicBlock{{Label: "b", Insts: []isa.Inst{{Op: isa.OpVAdd}}}}}, "vadd"},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestNumInstsAndPCBase(t *testing.T) {
	p := testProgram()
	if p.NumInsts() != 7 {
		t.Fatalf("NumInsts = %d, want 7", p.NumInsts())
	}
	if p.PCBase(0) != 0 || p.PCBase(1) != 2 {
		t.Fatalf("PCBase = %d,%d want 0,2", p.PCBase(0), p.PCBase(1))
	}
	if p.BlockIndex("body") != 1 || p.BlockIndex("nope") != -1 {
		t.Fatal("BlockIndex lookup broken")
	}
}

func TestStreamExpansion(t *testing.T) {
	p := testProgram()
	src := &SliceSource{
		BBs:     []int{0, 1, 1},
		VLs:     []int64{100},
		Strides: []int64{16},
		Addrs:   []uint64{0x1000, 0x2000, 0x1400, 0x2400},
	}
	s := NewStream(p, src)

	var got []isa.DynInst
	var d isa.DynInst
	for s.Next(&d) {
		got = append(got, d)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 12 {
		t.Fatalf("expanded %d instructions, want 12", len(got))
	}

	if got[0].Op != isa.OpSetVS || got[0].SetVal != 16 {
		t.Errorf("setvs: %+v", got[0])
	}
	if got[1].Op != isa.OpSetVL || got[1].SetVal != 100 {
		t.Errorf("setvl: %+v", got[1])
	}
	// First body iteration executes under VL=100, VS=16.
	if got[2].Op != isa.OpVLoad || got[2].VL != 100 || got[2].Stride != 16 || got[2].Addr != 0x1000 {
		t.Errorf("vload: %+v", got[2])
	}
	if got[3].Op != isa.OpVAdd || got[3].VL != 100 {
		t.Errorf("vadd: %+v", got[3])
	}
	if got[4].Op != isa.OpVStore || got[4].Addr != 0x2000 {
		t.Errorf("vstore: %+v", got[4])
	}
	// Second iteration draws fresh addresses.
	if got[7].Addr != 0x1400 || got[9].Addr != 0x2400 {
		t.Errorf("second iteration addresses: %#x %#x", got[7].Addr, got[9].Addr)
	}
	// PCs are stable across iterations.
	if got[2].PC != got[7].PC || got[2].PC != 2 {
		t.Errorf("PC of vload: %d and %d, want 2", got[2].PC, got[7].PC)
	}
	if s.Count() != 12 {
		t.Errorf("Count = %d", s.Count())
	}
}

func TestStreamVLClamping(t *testing.T) {
	p := &Program{Name: "clamp", Blocks: []BasicBlock{
		{Label: "b", Insts: []isa.Inst{
			{Op: isa.OpSetVL, Src1: isa.A(0)},
			{Op: isa.OpVAdd, Dst: isa.V(0), Src1: isa.V(1), Src2: isa.V(2)},
		}},
	}}
	src := &SliceSource{BBs: []int{0, 0, 0}, VLs: []int64{500, 0, 64}}
	s := NewStream(p, src)
	var d isa.DynInst
	var vls []uint16
	for s.Next(&d) {
		if d.Op == isa.OpVAdd {
			vls = append(vls, d.VL)
		}
	}
	if len(vls) != 3 || vls[0] != isa.MaxVL || vls[1] != 1 || vls[2] != 64 {
		t.Fatalf("clamped VLs = %v, want [%d 1 64]", vls, isa.MaxVL)
	}
}

func TestStreamDefaultVLVS(t *testing.T) {
	// Vector instructions before any SetVL/SetVS run at MaxVL, unit stride.
	p := &Program{Name: "dflt", Blocks: []BasicBlock{
		{Label: "b", Insts: []isa.Inst{{Op: isa.OpVLoad, Dst: isa.V(0), Src1: isa.A(0)}}},
	}}
	src := &SliceSource{BBs: []int{0}, Addrs: []uint64{0x10}}
	s := NewStream(p, src)
	var d isa.DynInst
	if !s.Next(&d) {
		t.Fatal("no instruction")
	}
	if d.VL != isa.MaxVL || d.Stride != isa.ElemBytes {
		t.Fatalf("defaults: VL=%d stride=%d", d.VL, d.Stride)
	}
}

func TestStreamBadBlockIndex(t *testing.T) {
	p := testProgram()
	s := NewStream(p, &SliceSource{BBs: []int{5}})
	var d isa.DynInst
	if s.Next(&d) {
		t.Fatal("expanded an out-of-range block")
	}
	if s.Err() == nil {
		t.Fatal("bad block index not reported")
	}
}

func TestStreamSourceExhaustion(t *testing.T) {
	// Address trace runs dry mid-block: the stream must surface an error.
	p := testProgram()
	src := &SliceSource{BBs: []int{0, 1}, VLs: []int64{10}, Strides: []int64{8}, Addrs: []uint64{0x1}}
	s := NewStream(p, src)
	var d isa.DynInst
	for s.Next(&d) {
	}
	if s.Err() == nil {
		t.Fatal("exhausted address trace not reported")
	}
}

func TestDrain(t *testing.T) {
	p := testProgram()
	src := &SliceSource{
		BBs:     []int{0, 1},
		VLs:     []int64{64},
		Strides: []int64{8},
		Addrs:   []uint64{1, 2},
	}
	n, st, err := NewStream(p, src).Drain()
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("drained %d, want 7", n)
	}
	if st.VectorInsts != 3 || st.ScalarInsts != 4 {
		t.Fatalf("stats: %+v", st)
	}
}
