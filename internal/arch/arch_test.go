package arch

import (
	"strings"
	"testing"

	"mtvec/internal/isa"
)

func TestPresetsValidate(t *testing.T) {
	for _, s := range Presets() {
		s := s
		if err := s.Validate(); err != nil {
			t.Errorf("preset %s does not validate: %v", s.Name, err)
		}
		if _, err := s.Derive(1); err != nil {
			t.Errorf("preset %s does not derive at 1 context: %v", s.Name, err)
		}
	}
}

func TestConvexC3400MatchesISAConstants(t *testing.T) {
	s := ConvexC3400()
	if s.VRegs != isa.NumV || s.VLen != isa.MaxVL || s.VRegsPerBank != isa.VRegsPerBank ||
		s.BankReadPorts != isa.BankReadPorts || s.BankWritePorts != isa.BankWritePorts {
		t.Fatalf("reference preset drifted from the isa constants: %+v", s.RegFile)
	}
	if s.NumBanks() != isa.NumVBanks {
		t.Fatalf("banks = %d, want %d", s.NumBanks(), isa.NumVBanks)
	}
	if s.RestrictedFUs != 1 || s.GeneralFUs != 1 || s.IssueWidth != 1 || s.MaxContexts != 8 {
		t.Fatalf("reference preset lost the paper's machine parameters: %+v", s)
	}
	for v := uint8(0); v < isa.NumV; v++ {
		if s.Bank(v) != isa.VBank(v) {
			t.Fatalf("bank mapping of v%d = %d, want %d", v, s.Bank(v), isa.VBank(v))
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range PresetNames() {
		s, ok := ByName(name)
		if !ok || s.Name != name {
			t.Errorf("ByName(%q) = %+v, %v", name, s.Name, ok)
		}
	}
	if _, ok := ByName("pdp-11"); ok {
		t.Error("unknown preset resolved")
	}
}

// TestValidateJoinsAllDiagnostics mirrors the session option layer: a
// spec with several independent problems reports every one at once.
func TestValidateJoinsAllDiagnostics(t *testing.T) {
	s := ConvexC3400()
	s.VLen = 0          // out of range
	s.BankReadPorts = 0 // out of range
	s.GeneralFUs = 0    // mul/div/sqrt need a general lane
	s.IssueWidth = 0    // out of range
	err := s.Validate()
	if err == nil {
		t.Fatal("invalid spec accepted")
	}
	for _, want := range []string{"vector length", "read ports", "general FU", "issue width"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
}

func TestRegFileValidation(t *testing.T) {
	bad := []RegFile{
		{VRegs: 0, VLen: 128, VRegsPerBank: 2, BankReadPorts: 2, BankWritePorts: 1},
		{VRegs: MaxVRegs + 1, VLen: 128, VRegsPerBank: 1, BankReadPorts: 2, BankWritePorts: 1},
		{VRegs: 8, VLen: MaxVLen + 1, VRegsPerBank: 2, BankReadPorts: 2, BankWritePorts: 1},
		{VRegs: 8, VLen: 128, VRegsPerBank: 3, BankReadPorts: 2, BankWritePorts: 1}, // 3 does not divide 8
		{VRegs: 8, VLen: 128, VRegsPerBank: 2, BankReadPorts: 0, BankWritePorts: 1},
		{VRegs: 8, VLen: 128, VRegsPerBank: 2, BankReadPorts: 2, BankWritePorts: 0},
	}
	for i, rf := range bad {
		if rf.Validate() == nil {
			t.Errorf("case %d: invalid organization accepted: %+v", i, rf)
		}
	}
	if err := DefaultRegFile().Validate(); err != nil {
		t.Fatalf("default organization rejected: %v", err)
	}
}

func TestRegFileBuildKeyCanonicalizesMachineSideFields(t *testing.T) {
	a := DefaultRegFile()
	a.BankReadPorts, a.BankWritePorts, a.PartitionPerContext = 1, 1, true
	b := DefaultRegFile()
	if a.BuildKey() != b.BuildKey() {
		t.Fatal("port/partition variants should share compiled code")
	}
	if err := a.BuildKey().Validate(); err != nil {
		t.Fatalf("build key is not itself a valid organization: %v", err)
	}
	c := DefaultRegFile()
	c.VLen = 64
	if c.BuildKey() == b.BuildKey() {
		t.Fatal("different strip lengths must not share compiled code")
	}
	if (RegFile{}).BuildKey() != b.BuildKey() {
		t.Fatal("zero organization should build as the default")
	}
}

func TestDeriveTables(t *testing.T) {
	s := ConvexC3400()
	d, err := s.Derive(4)
	if err != nil {
		t.Fatal(err)
	}
	if d.CtxVRegs != 8 || d.NumBanks != 4 || d.BankReadPorts != 2 || d.BankWritePorts != 1 {
		t.Fatalf("derived tables wrong: %+v", d)
	}
	if d.VLMax != isa.MaxVL || d.RestrictedFUs != 1 || d.TotalFUs != 2 {
		t.Fatalf("derived tables wrong: %+v", d)
	}
	for v := 0; v < 8; v++ {
		if int(d.BankOf[v]) != v/2 {
			t.Fatalf("bankOf[%d] = %d", v, d.BankOf[v])
		}
	}
}

func TestDerivePartitioned(t *testing.T) {
	s := ConvexC3400()
	s.PartitionPerContext = true
	d, err := s.Derive(2)
	if err != nil {
		t.Fatal(err)
	}
	if d.CtxVRegs != 4 || d.NumBanks != 2 {
		t.Fatalf("partitioned 2-context derive: %+v", d)
	}
	// 3 contexts do not divide 8 registers.
	if _, err := s.Derive(3); err == nil {
		t.Fatal("uneven partition accepted")
	}
	// A split cutting through a physical bank would give two contexts
	// private copies of one bank's ports.
	s.VRegsPerBank = 8
	if _, err := s.Derive(2); err == nil {
		t.Fatal("bank-splitting partition accepted")
	}
}

func TestValidateContexts(t *testing.T) {
	s := ConvexC3400()
	if err := s.ValidateContexts(8); err != nil {
		t.Fatalf("8 contexts rejected on an 8-context shape: %v", err)
	}
	err := s.ValidateContexts(9)
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("9 contexts: err = %v", err)
	}
	if s.ValidateContexts(0) == nil {
		t.Fatal("0 contexts accepted")
	}
}

// TestSpecIsPlainValue pins the reuse contract: specs copy by
// assignment, compare with ==, and mutating a copy never affects the
// original — what makes sharing one Spec across Sessions safe.
func TestSpecIsPlainValue(t *testing.T) {
	a := ConvexC3400()
	b := a.Clone()
	if a != b {
		t.Fatal("clone differs from original")
	}
	b.VLen = 64
	b.Lat.ReadXbar = 3
	b.Mem.Latency = 100
	if a.VLen != isa.MaxVL || a.Lat.ReadXbar != 2 || a.Mem.Latency != 50 {
		t.Fatal("mutating a clone leaked into the original")
	}
}
