package arch

import "testing"

// FuzzSpecValidate drives randomized machine shapes through the
// Validate → ValidateContexts → Derive pipeline. The properties under
// test:
//
//   - no input panics any of the three (they must diagnose, not crash);
//   - Derive succeeds exactly when both validations pass — there is no
//     shape the validators accept that the derivation then chokes on;
//   - every Derived table a validated shape produces satisfies the
//     invariants the engine's fixed-size scans assume (register and
//     bank indices in range, FU lanes within the cap, partitioned
//     files splitting exactly).
//
// The corpus is seeded from the preset shapes at several context
// counts, plus targeted mutants (partitioned files, degenerate bank
// geometry, out-of-cap values) so the fuzzer starts at the boundaries.
func FuzzSpecValidate(f *testing.F) {
	seed := func(s Spec, contexts int, partition bool) {
		f.Add(s.VRegs, s.VLen, s.VRegsPerBank, s.BankReadPorts, s.BankWritePorts,
			s.MaxContexts, s.RestrictedFUs, s.GeneralFUs, s.IssueWidth,
			s.Mem.Latency, contexts, partition)
	}
	for _, p := range Presets() {
		seed(p, 1, false)
		seed(p, p.MaxContexts, false)
		seed(p, 2, true)
	}
	// Boundary mutants: a partitioned file that splits a bank, a
	// one-register file, values straddling every cap.
	f.Add(8, 128, 2, 2, 1, 8, 1, 1, 1, 70, 4, true)
	f.Add(1, 1, 1, 1, 1, 1, 0, 1, 1, 1, 1, false)
	f.Add(MaxVRegs, MaxVLen, 1, 1, 1, MaxMachineContexts, 0, MaxVectorFUs, 1, 100, 64, true)
	f.Add(MaxVRegs+1, MaxVLen+1, 0, 0, 0, 0, -1, 0, 0, -5, 0, false)

	f.Fuzz(func(t *testing.T, vregs, vlen, perBank, rdPorts, wrPorts,
		maxCtx, rFU, gFU, iw, memLat, contexts int, partition bool) {
		s := ConvexC3400() // valid Lat table; Mem mutated below
		s.Name = "fuzz"
		s.RegFile = RegFile{
			VRegs:               vregs,
			VLen:                vlen,
			VRegsPerBank:        perBank,
			BankReadPorts:       rdPorts,
			BankWritePorts:      wrPorts,
			PartitionPerContext: partition,
		}
		s.MaxContexts = maxCtx
		s.RestrictedFUs = rFU
		s.GeneralFUs = gFU
		s.IssueWidth = iw
		s.Mem.Latency = memLat

		verr := s.Validate()
		var cerr error
		if verr == nil {
			cerr = s.ValidateContexts(contexts)
		}
		d, derr := s.Derive(contexts)

		if (derr == nil) != (verr == nil && cerr == nil) {
			t.Fatalf("Derive error %v disagrees with Validate %v / ValidateContexts %v", derr, verr, cerr)
		}
		if derr != nil {
			return
		}

		// Invariants of a derived table the engine relies on.
		if d.CtxVRegs < 1 || d.CtxVRegs > s.VRegs || d.CtxVRegs > MaxVRegs {
			t.Fatalf("CtxVRegs %d out of range (VRegs %d)", d.CtxVRegs, s.VRegs)
		}
		if partition && d.CtxVRegs*contexts != s.VRegs {
			t.Fatalf("partitioned split %d×%d != %d registers", d.CtxVRegs, contexts, s.VRegs)
		}
		if d.NumBanks < 1 {
			t.Fatalf("NumBanks %d < 1", d.NumBanks)
		}
		for v := 0; v < d.CtxVRegs; v++ {
			if int(d.BankOf[v]) >= d.NumBanks {
				t.Fatalf("BankOf[%d] = %d beyond %d banks", v, d.BankOf[v], d.NumBanks)
			}
		}
		if int(d.VLMax) != s.VLen {
			t.Fatalf("VLMax %d != VLen %d", d.VLMax, s.VLen)
		}
		if d.TotalFUs != rFU+gFU || d.TotalFUs > MaxVectorFUs || d.RestrictedFUs != rFU {
			t.Fatalf("FU layout %d/%d disagrees with spec %d+%d", d.RestrictedFUs, d.TotalFUs, rFU, gFU)
		}
		if d.BankReadPorts != rdPorts || d.BankWritePorts != wrPorts {
			t.Fatalf("ports %d/%d disagree with spec %d/%d", d.BankReadPorts, d.BankWritePorts, rdPorts, wrPorts)
		}
	})
}
