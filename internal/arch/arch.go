// Package arch is the declarative machine-shape layer: everything that
// used to be a hard-wired constant of the modelled Convex C3400 — vector
// register count and length, register-bank geometry and ports, hardware
// context limits and per-context register partitioning, the vector
// functional-unit mix, the decode issue width, the Table 1 latencies and
// the memory-system configuration — collected into one validated Spec
// value that the engine, the compiler and the experiment harness consume.
//
// A Spec is a plain comparable value: copy it to derive variants, share
// it freely across goroutines and Sessions (nothing in a Spec is ever
// mutated by a run), and compare it with == . The zero Spec is not valid;
// start from a preset (ConvexC3400, VP2000, CrayLikePorts) or fill every
// field. Validation reports every diagnosable problem at once, joined,
// mirroring the session option layer.
//
// The paper's Section 8 register-file study (crossbar latencies, bank
// ports, per-context register splitting) motivates the layer: with the
// shape extracted, a machine variant is a value, and a register-file
// organization study is a sweep over values.
package arch

import (
	"errors"
	"fmt"

	"mtvec/internal/isa"
	"mtvec/internal/memsys"
)

// Capacity ceilings. These bound the engine's fixed-size lookup tables
// and zero-allocation scans; they are generous relative to the machines
// of the paper's era (the Convex has 8 vector registers, the VP2000 up
// to 64 visible).
const (
	// MaxVRegs is the largest vector register count a Spec may declare
	// (bounded by what the ISA encoding can name).
	MaxVRegs = isa.VRegLimit

	// MaxVLen is the largest elements-per-register value (DynInst.VL is
	// a uint16; 4096 covers every machine the studies sweep).
	MaxVLen = 4096

	// MaxMachineContexts caps Spec.MaxContexts (the paper studies up to
	// 4 hardware contexts; 64 leaves sweeps room without unbounding the
	// engine).
	MaxMachineContexts = 64

	// MaxVectorFUs caps the functional-unit mix.
	MaxVectorFUs = 8
)

// RegFile describes a vector register file organization: how many
// architectural registers a context sees, how long each register is, and
// how the registers group into banks with read/write ports into the
// crossbars. The zero RegFile means "the default organization"
// (DefaultRegFile); Normalize resolves it.
type RegFile struct {
	// VRegs is the number of architectural vector registers. With
	// PartitionPerContext set this is the machine's physical pool, split
	// evenly among the active contexts; otherwise every context gets its
	// own full file (the paper's multithreaded design replicates it).
	VRegs int

	// VLen is the number of elements each vector register holds (the
	// hardware vector length; the Convex C3400 holds 128 64-bit words).
	VLen int

	// VRegsPerBank groups registers into banks (the Convex pairs them).
	// It must divide VRegs.
	VRegsPerBank int

	// BankReadPorts / BankWritePorts are each bank's ports into the read
	// and write crossbars (the Convex has 2 read, 1 write).
	BankReadPorts  int
	BankWritePorts int

	// PartitionPerContext selects the Section 8 register-splitting
	// alternative: instead of replicating the file per context, the
	// VRegs physical registers are divided evenly among the contexts, so
	// a 2-context machine halves each context's architectural file. The
	// context count must divide VRegs.
	PartitionPerContext bool
}

// DefaultRegFile is the Convex C3400 organization the rest of the
// repository's constants describe: 8 registers of 128 elements, paired
// into 4 banks with 2 read ports and 1 write port each.
func DefaultRegFile() RegFile {
	return RegFile{
		VRegs:          isa.NumV,
		VLen:           isa.MaxVL,
		VRegsPerBank:   isa.VRegsPerBank,
		BankReadPorts:  isa.BankReadPorts,
		BankWritePorts: isa.BankWritePorts,
	}
}

// IsZero reports whether the RegFile is the unset zero value.
func (r RegFile) IsZero() bool { return r == RegFile{} }

// Normalize resolves the zero value to DefaultRegFile and leaves any
// explicitly-set organization untouched.
func (r RegFile) Normalize() RegFile {
	if r.IsZero() {
		return DefaultRegFile()
	}
	return r
}

// NumBanks returns the number of register banks.
func (r RegFile) NumBanks() int {
	if r.VRegsPerBank <= 0 {
		return 0
	}
	return r.VRegs / r.VRegsPerBank
}

// Bank returns the bank index holding vector register v.
func (r RegFile) Bank(v uint8) int { return int(v) / r.VRegsPerBank }

// BuildKey canonicalizes the fields that do not affect compiled code
// (port counts and partitioning are machine-side, so they take the
// reference values), letting workload builds be cached per distinct
// compiler-visible organization. The result is itself a valid RegFile.
func (r RegFile) BuildKey() RegFile {
	r = r.Normalize()
	def := DefaultRegFile()
	return RegFile{
		VRegs:          r.VRegs,
		VLen:           r.VLen,
		VRegsPerBank:   r.VRegsPerBank,
		BankReadPorts:  def.BankReadPorts,
		BankWritePorts: def.BankWritePorts,
	}
}

// Validate reports every problem with the organization, joined.
func (r RegFile) Validate() error {
	var errs []error
	ef := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }
	if r.VRegs < 1 || r.VRegs > MaxVRegs {
		ef("arch: vector registers %d out of range 1..%d", r.VRegs, MaxVRegs)
	}
	if r.VLen < 1 || r.VLen > MaxVLen {
		ef("arch: vector length %d out of range 1..%d", r.VLen, MaxVLen)
	}
	if r.VRegsPerBank < 1 {
		ef("arch: registers per bank %d < 1", r.VRegsPerBank)
	} else if r.VRegs >= 1 && r.VRegs%r.VRegsPerBank != 0 {
		ef("arch: registers per bank %d does not divide %d registers", r.VRegsPerBank, r.VRegs)
	}
	if r.BankReadPorts < 1 {
		ef("arch: bank read ports %d < 1", r.BankReadPorts)
	}
	if r.BankWritePorts < 1 {
		ef("arch: bank write ports %d < 1", r.BankWritePorts)
	}
	return errors.Join(errs...)
}

// Spec is a complete machine shape. It embeds the register-file
// organization and carries the context cap, the vector functional-unit
// mix, the default issue width, the Table 1 latency set and the memory
// system configuration.
type Spec struct {
	// Name labels the shape in CLIs and reports ("convex-c3400", ...).
	// It carries no semantics: two specs that differ only in Name
	// simulate identically and share memoized results.
	//mtvlint:allow keycomplete -- Name is a display label with no simulation semantics; sharing cached results across names is intended
	Name string

	RegFile

	// MaxContexts is the largest hardware context count this register
	// file model supports (the validation cap Config.Contexts is checked
	// against; the old core.MaxContexts constant, now per-shape).
	MaxContexts int

	// RestrictedFUs and GeneralFUs set the vector functional-unit mix:
	// restricted lanes cannot execute mul/div/sqrt (the Convex FU1),
	// general lanes execute everything (FU2). Dispatch prefers
	// restricted lanes, keeping general lanes free for the ops that need
	// them — with the default 1+1 mix this is exactly the paper's
	// machine.
	RestrictedFUs int
	GeneralFUs    int

	// IssueWidth is the default decode-slots-per-cycle for machines
	// built from this spec (core.Config.IssueWidth overrides when set).
	IssueWidth int

	// Lat is the functional-unit / crossbar latency table (Table 1).
	Lat isa.LatencyTable

	// Mem configures the memory subsystem (latency, ports, banking).
	Mem memsys.Config
}

// IsZero reports whether the Spec is the unset zero value.
func (s Spec) IsZero() bool { return s == Spec{} }

// Clone returns an independent copy of the spec. Specs are plain values
// with no reference fields, so the copy is the assignment itself; the
// method exists to make reuse contracts explicit at call sites.
func (s Spec) Clone() Spec { return s }

// CtxVRegs returns the architectural vector registers each context sees
// at the given context count: the full file when replicated, an even
// share when partitioned.
func (s *Spec) CtxVRegs(contexts int) int {
	if s.PartitionPerContext && contexts > 0 {
		return s.VRegs / contexts
	}
	return s.VRegs
}

// Validate reports every diagnosable problem with the spec, joined into
// one error (mirroring the session option layer's diagnostics).
func (s *Spec) Validate() error {
	var errs []error
	ef := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }
	if err := s.RegFile.Validate(); err != nil {
		errs = append(errs, err)
	}
	if s.MaxContexts < 1 || s.MaxContexts > MaxMachineContexts {
		ef("arch: max contexts %d out of range 1..%d", s.MaxContexts, MaxMachineContexts)
	}
	if s.RestrictedFUs < 0 {
		ef("arch: negative restricted FU count %d", s.RestrictedFUs)
	}
	if s.GeneralFUs < 1 {
		ef("arch: general FU count %d < 1 (mul/div/sqrt need a general lane)", s.GeneralFUs)
	}
	if n := s.RestrictedFUs + s.GeneralFUs; n > MaxVectorFUs {
		ef("arch: %d functional units exceed the %d-lane cap", n, MaxVectorFUs)
	}
	if s.IssueWidth < 1 {
		ef("arch: issue width %d < 1", s.IssueWidth)
	}
	if err := s.Lat.Validate(); err != nil {
		errs = append(errs, err)
	}
	if err := s.Mem.Validate(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// ValidateContexts checks the parts of the shape that depend on the
// machine's context count: the MaxContexts cap and, when partitioning,
// even divisibility with at least one register per context.
func (s *Spec) ValidateContexts(contexts int) error {
	var errs []error
	if contexts < 1 || contexts > s.MaxContexts {
		errs = append(errs, fmt.Errorf("arch: contexts %d out of range 1..%d (spec %q)", contexts, s.MaxContexts, s.Name))
	}
	// The partition checks form a derivation chain (share exists only
	// when the division is even), so within the chain only the first
	// applicable problem is meaningful — but it is reported alongside an
	// out-of-range count rather than hidden behind it.
	if s.PartitionPerContext && contexts >= 1 {
		switch share := s.VRegs / contexts; {
		case s.VRegs%contexts != 0:
			errs = append(errs, fmt.Errorf("arch: %d contexts do not divide the %d-register partitioned file", contexts, s.VRegs))
		case share < 1:
			errs = append(errs, fmt.Errorf("arch: partitioning %d registers across %d contexts leaves none", s.VRegs, contexts))
		case s.VRegsPerBank > 0 && share%s.VRegsPerBank != 0:
			// Each context's share must align to bank boundaries: a split
			// cutting through a physical bank would hand two contexts
			// private copies of one bank's ports.
			errs = append(errs, fmt.Errorf("arch: partitioning %d registers across %d contexts splits a %d-register bank; per-context share must be a whole number of banks",
				s.VRegs, contexts, s.VRegsPerBank))
		}
	}
	return errors.Join(errs...)
}

// Derived is the set of lookup tables the engine consumes, resolved once
// per machine from a validated spec and context count.
type Derived struct {
	// BankOf maps a vector register index to its bank (valid for
	// indices below CtxVRegs).
	BankOf [MaxVRegs]uint8

	// CtxVRegs is the per-context architectural register count.
	CtxVRegs int

	// NumBanks is the number of banks each context's file exposes.
	NumBanks int

	// BankReadPorts / BankWritePorts mirror the spec for flat access.
	BankReadPorts  int
	BankWritePorts int

	// VLMax is the largest vector length an instruction may carry.
	VLMax uint16

	// RestrictedFUs and TotalFUs describe the lane layout: lanes
	// [0, RestrictedFUs) are restricted, [RestrictedFUs, TotalFUs)
	// general.
	RestrictedFUs int
	TotalFUs      int
}

// Derive validates the spec against the context count and resolves the
// engine tables.
func (s *Spec) Derive(contexts int) (Derived, error) {
	if err := s.Validate(); err != nil {
		return Derived{}, err
	}
	if err := s.ValidateContexts(contexts); err != nil {
		return Derived{}, err
	}
	ctxRegs := s.CtxVRegs(contexts)
	d := Derived{
		CtxVRegs:       ctxRegs,
		NumBanks:       (ctxRegs + s.VRegsPerBank - 1) / s.VRegsPerBank,
		BankReadPorts:  s.BankReadPorts,
		BankWritePorts: s.BankWritePorts,
		VLMax:          uint16(s.VLen),
		RestrictedFUs:  s.RestrictedFUs,
		TotalFUs:       s.RestrictedFUs + s.GeneralFUs,
	}
	for v := 0; v < ctxRegs; v++ {
		d.BankOf[v] = uint8(v / s.VRegsPerBank)
	}
	return d, nil
}

// ConvexC3400 is the reference shape every constant in the repository
// reconstructs: the paper's Convex C3400-class machine. Machines built
// from it are byte-identical to machines built before the arch layer
// existed (the golden suite pins this).
func ConvexC3400() Spec {
	return Spec{
		Name:          "convex-c3400",
		RegFile:       DefaultRegFile(),
		MaxContexts:   8,
		RestrictedFUs: 1,
		GeneralFUs:    1,
		IssueWidth:    1,
		Lat:           isa.DefaultLatencies(),
		Mem:           memsys.DefaultConfig(),
	}
}

// VP2000 models the Fujitsu VP2000 family's register file for the
// Section 9 comparison: a much larger reconfigurable file (modelled at
// 32 registers of 512 elements, 4 per bank) feeding two general vector
// pipes, with the paper's dual-scalar decode arrangement expressed via
// core.Config.DualScalar. Latencies and memory keep the Table 1 model so
// the register-file organization is the isolated variable.
func VP2000() Spec {
	s := ConvexC3400()
	s.Name = "vp2000"
	s.RegFile = RegFile{
		VRegs:          32,
		VLen:           512,
		VRegsPerBank:   4,
		BankReadPorts:  2,
		BankWritePorts: 1,
	}
	s.MaxContexts = 2
	s.RestrictedFUs = 0
	s.GeneralFUs = 2
	return s
}

// CrayLikePorts is the Section 10 future-work variant: Cray-style short
// single-ported registers (8 registers of 64 elements, one bank each,
// 1R/1W) over a 2-load/1-store memory port arrangement with no scalar
// cache, matching the WithMemPorts ablation.
func CrayLikePorts() Spec {
	s := ConvexC3400()
	s.Name = "cray-ports"
	s.RegFile = RegFile{
		VRegs:          isa.NumV,
		VLen:           64,
		VRegsPerBank:   1,
		BankReadPorts:  1,
		BankWritePorts: 1,
	}
	s.Mem = memsys.Config{
		Latency:    s.Mem.Latency,
		LoadPorts:  2,
		StorePorts: 1,
	}
	return s
}

// Presets returns the named machine shapes, reference machine first.
func Presets() []Spec {
	return []Spec{ConvexC3400(), VP2000(), CrayLikePorts()}
}

// ByName returns the preset with the given name, or false.
func ByName(name string) (Spec, bool) {
	for _, s := range Presets() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// PresetNames lists the preset names in Presets order.
func PresetNames() []string {
	ps := Presets()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}
