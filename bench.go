package mtvec

import (
	"fmt"
	"os"
	"strconv"
)

// BenchScaleEnv is the environment variable the benchmark harnesses read
// to override the workload scale (a fraction of Table 3's counts, which
// are in millions).
const BenchScaleEnv = "MTVEC_BENCH_SCALE"

// DefaultBenchScale is the benchmark workload scale when BenchScaleEnv is
// unset: 3e-5 of Table 3's millions keeps a full benchmark pass fast
// while exercising every code path at realistic vector lengths.
const DefaultBenchScale = 3e-5

// BenchScale resolves the benchmark workload scale: the value of
// MTVEC_BENCH_SCALE when set (which must parse as a positive float), the
// default otherwise. Both the repository's testing.B suite and the
// mtvbench -bench-json harness use it, so recorded baselines are
// self-describing and a bad override fails fast, once, with a clear
// message — not per benchmark at run time.
func BenchScale() (float64, error) {
	s := os.Getenv(BenchScaleEnv)
	if s == "" {
		return DefaultBenchScale, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("mtvec: bad %s %q: want a positive float", BenchScaleEnv, s)
	}
	return v, nil
}
