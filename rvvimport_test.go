package mtvec_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"mtvec"
)

// importEquivalent exports a workload's trace as RVV text and re-imports
// it — the acceptance path for external trace generators.
func importEquivalent(t *testing.T, w *mtvec.Workload) *mtvec.Workload {
	t.Helper()
	var buf bytes.Buffer
	if err := mtvec.ExportRVVTrace(&buf, w.Trace); err != nil {
		t.Fatal(err)
	}
	tr, err := mtvec.ImportRVVTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Name the import after the source's short tag so thread labels (the
	// only caller-chosen metadata in a Report) line up for comparison.
	imp, err := mtvec.WorkloadFromTrace(w.Spec.Short, tr)
	if err != nil {
		t.Fatal(err)
	}
	return imp
}

// TestImportedTraceReplaysIdentically: an RVV-round-tripped trace must
// produce byte-identical Reports to its in-DSL equivalent, solo and
// multithreaded, across -jobs counts and with lockstep batching on and
// off.
func TestImportedTraceReplaysIdentically(t *testing.T) {
	ax, sp := build(t, "ax"), build(t, "sp")
	iax, isp := importEquivalent(t, ax), importEquivalent(t, sp)
	if iax.Stats != ax.Stats {
		t.Fatalf("imported axpy profile differs:\n dsl %+v\n imp %+v", ax.Stats, iax.Stats)
	}

	ctx := context.Background()
	mk := func(a, s *mtvec.Workload) []mtvec.RunSpec {
		return []mtvec.RunSpec{
			mtvec.Solo(a),
			mtvec.Solo(a, mtvec.WithMemLatency(100)),
			mtvec.Solo(s, mtvec.WithMemLatency(50)),
			mtvec.Queue([]*mtvec.Workload{a, s}, mtvec.WithContexts(2), mtvec.WithMemLatency(50)),
			mtvec.Group(a, []*mtvec.Workload{s}, mtvec.WithMemLatency(80)),
		}
	}
	dsl, err := mtvec.NewSession().RunAll(ctx, mk(ax, sp)...)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		opts []mtvec.SessionOption
	}{
		{"jobs=1", []mtvec.SessionOption{mtvec.WithJobs(1)}},
		{"jobs=4", []mtvec.SessionOption{mtvec.WithJobs(4)}},
		{"unbatched", []mtvec.SessionOption{mtvec.WithoutBatching()}},
	} {
		reps, err := mtvec.NewSession(tc.opts...).RunAll(ctx, mk(iax, isp)...)
		if err != nil {
			t.Fatal(err)
		}
		for i := range reps {
			reportsEqual(t, tc.name, dsl[i], reps[i])
		}
	}
}

// TestImportedTraceMemoButNoPersistKey: imported workloads memoize
// in-session like any other but are excluded from store persistence.
func TestImportedTraceMemoButNoPersistKey(t *testing.T) {
	iax := importEquivalent(t, build(t, "ax"))
	ses := mtvec.NewSession()
	r1, err := ses.Run(context.Background(), mtvec.Solo(iax))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ses.Run(context.Background(), mtvec.Solo(iax))
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("imported workload not memoized")
	}
	if n := ses.Simulations(); n != 1 {
		t.Fatalf("simulations = %d, want 1", n)
	}
}

// TestImportRVVTraceDiagnostics: the public import surface reports every
// defective line, joined.
func TestImportRVVTraceDiagnostics(t *testing.T) {
	_, err := mtvec.ImportRVVTrace(strings.NewReader("format: mtvrvv/1\nbogus\nvfadd.vv v0\n"))
	if err == nil {
		t.Fatal("corrupt trace accepted")
	}
	for _, want := range []string{"line 2:", "line 3:"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}
