#!/usr/bin/env bash
# Test-coverage ratchet: every package must stay at or above its floor.
#
#   scripts/cover.sh              # run tests with coverage, enforce floors
#   PROFILE=cov.out scripts/cover.sh   # also keep the merged profile
#
# Floors are set a few points below the measured coverage at the time a
# package last moved, so routine edits cannot trip the gate but a PR
# that lands a chunk of untested code fails loudly. Raise a floor when
# you raise a package's coverage — the ratchet only turns one way; never
# lower one to make a PR pass. Packages not listed (the thin cmd/ mains
# and examples) use DEFAULT_FLOOR.
set -euo pipefail
cd "$(dirname "$0")/.."

PROFILE=${PROFILE:-/tmp/mtvec-cover.out}
DEFAULT_FLOOR=45

declare -A FLOOR=(
  [mtvec]=50
  [mtvec/cmd/mtvlint]=70
  [mtvec/internal/arch]=90
  [mtvec/internal/cluster]=78
  [mtvec/internal/core]=90
  [mtvec/internal/lint]=85
  [mtvec/internal/experiments]=88
  [mtvec/internal/isa]=85
  [mtvec/internal/kernel]=90
  [mtvec/internal/memsys]=85
  [mtvec/internal/metrics]=88
  [mtvec/internal/prog]=88
  [mtvec/internal/report]=95
  [mtvec/internal/runner]=75
  [mtvec/internal/sched]=90
  [mtvec/internal/session]=75
  [mtvec/internal/stats]=95
  [mtvec/internal/store]=78
  [mtvec/internal/trace]=85
  [mtvec/internal/vcomp]=88
  [mtvec/internal/workload]=90
)

out=$(go test -coverprofile="$PROFILE" -covermode=atomic ./...) || {
  echo "$out"
  exit 1
}
echo "$out"

fail=0
while read -r pkg pct; do
  floor=${FLOOR[$pkg]:-$DEFAULT_FLOOR}
  if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
    echo "FAIL: $pkg coverage $pct% is below its $floor% floor" >&2
    fail=1
  fi
done < <(echo "$out" | awk '/coverage:/ && $1 == "ok" {
  for (i = 1; i <= NF; i++) if ($i == "coverage:") { sub(/%$/, "", $(i+1)); print $2, $(i+1) }
}')

if [[ $fail -ne 0 ]]; then
  echo "coverage ratchet failed (floors live in scripts/cover.sh)" >&2
  exit 1
fi
echo "coverage ratchet OK (profile: $PROFILE)" >&2
