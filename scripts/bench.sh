#!/usr/bin/env bash
# Reproducible benchmark runner (see docs/PERF.md).
#
#   scripts/bench.sh                  # measure -> BENCH_PR.json, gate vs BENCH_baseline.json
#   scripts/bench.sh -o OUT.json      # measure into OUT.json only (no gate)
#   scripts/bench.sh --refresh        # re-record BENCH_baseline.json on this machine
#   scripts/bench.sh --gate-ref REF   # measure REF on THIS machine and gate against it
#                                     # (what CI uses: same-hardware comparison, so the
#                                     # gate never trips on runner-vs-laptop differences)
#   scripts/bench.sh --cpuprofile cpu.pprof --memprofile mem.pprof
#                                     # also profile the measuring run (either flag alone
#                                     # works; combine with any mode above)
#
# Environment knobs (all optional):
#   BENCHTIME    minimum measuring time per benchmark   (default 300ms)
#   COUNT        samples per benchmark, fastest wins    (default 3)
#   BENCH_JOBS   session gate width for the sweep cases (default: all cores)
#   MAX_REGRESS  geomean ns/op regression gate fraction (default 0.10)
#   MAX_REGRESS_BYTES  geomean B/op regression gate fraction (default 0.10)
#   BASELINE     baseline artifact path                 (default BENCH_baseline.json)
#   MTVEC_BENCH_SCALE  workload scale override; recorded in the artifact
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME=${BENCHTIME:-300ms}
COUNT=${COUNT:-3}
BENCH_JOBS=${BENCH_JOBS:-0}
MAX_REGRESS=${MAX_REGRESS:-0.10}
MAX_REGRESS_BYTES=${MAX_REGRESS_BYTES:-0.10}
BASELINE=${BASELINE:-BENCH_baseline.json}

OUT=BENCH_PR.json
GATE=1
REF=${GITHUB_SHA:-local}
GATE_REF=
PROFILE_FLAGS=()

while [[ $# -gt 0 ]]; do
  case "$1" in
    -o) OUT=$2; GATE=0; shift 2 ;;
    --refresh) OUT=$BASELINE; GATE=0; REF=baseline; shift ;;
    --gate-ref) GATE_REF=$2; shift 2 ;;
    --cpuprofile) PROFILE_FLAGS+=(-cpuprofile "$2"); shift 2 ;;
    --memprofile) PROFILE_FLAGS+=(-memprofile "$2"); shift 2 ;;
    *) echo "usage: scripts/bench.sh [-o OUT.json | --refresh | --gate-ref REF] [--cpuprofile F] [--memprofile F]" >&2; exit 2 ;;
  esac
done

JOBS_FLAGS=()
if [[ $BENCH_JOBS -gt 0 ]]; then
  JOBS_FLAGS=(-bench-jobs "$BENCH_JOBS")
fi

echo "measuring benchmark suite (benchtime=$BENCHTIME count=$COUNT) -> $OUT" >&2
go run ./cmd/mtvbench -bench-json -benchtime "$BENCHTIME" -bench-count "$COUNT" \
  -bench-ref "$REF" -o "$OUT" "${JOBS_FLAGS[@]}" \
  ${PROFILE_FLAGS[@]+"${PROFILE_FLAGS[@]}"}

[[ $GATE -eq 1 ]] || exit 0

if [[ -n $GATE_REF ]]; then
  # Same-machine gate: build and measure the base ref right here, so the
  # comparison never mixes hardware. Falls back to the checked-in
  # baseline if the base ref predates the harness.
  WT=$(mktemp -d)/base
  trap 'git worktree remove --force "$WT" >/dev/null 2>&1 || true' EXIT
  git worktree add --detach "$WT" "$GATE_REF" >&2
  if [[ -f "$WT/cmd/mtvbench/bench.go" ]]; then
    BASE_JOBS_FLAGS=()
    if [[ $BENCH_JOBS -gt 0 ]] && grep -q 'bench-jobs' "$WT/cmd/mtvbench/main.go"; then
      BASE_JOBS_FLAGS=(-bench-jobs "$BENCH_JOBS")
    fi
    (cd "$WT" && go run ./cmd/mtvbench -bench-json -benchtime "$BENCHTIME" \
      -bench-count "$COUNT" -bench-ref "$GATE_REF" -o BENCH_base.json \
      ${BASE_JOBS_FLAGS[@]+"${BASE_JOBS_FLAGS[@]}"})
    go run ./cmd/mtvbench -bench-compare -max-regress "$MAX_REGRESS" \
      -max-regress-bytes "$MAX_REGRESS_BYTES" \
      -o BENCH_compare.json "$WT/BENCH_base.json" "$OUT"
    exit 0
  fi
  echo "base ref $GATE_REF predates the bench harness; using $BASELINE" >&2
fi

if [[ ! -f $BASELINE ]]; then
  echo "no $BASELINE checked in; skipping the regression gate" >&2
  exit 0
fi
go run ./cmd/mtvbench -bench-compare -max-regress "$MAX_REGRESS" \
  -max-regress-bytes "$MAX_REGRESS_BYTES" \
  -o BENCH_compare.json "$BASELINE" "$OUT"
