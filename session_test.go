package mtvec_test

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"mtvec"
)

// reportsEqual compares two Reports for byte-identity of every metric.
func reportsEqual(t *testing.T, name string, a, b *mtvec.Report) {
	t.Helper()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("%s: reports differ:\n old %+v\n new %+v", name, a, b)
	}
}

// TestSessionReproducesRunWrappers is the acceptance check of the API
// redesign: Session.Run must reproduce byte-identical Reports for the
// four legacy entry points, both via WithConfig (the wrappers' own
// path) and via the granular options.
func TestSessionReproducesRunWrappers(t *testing.T) {
	tf, sd := build(t, "tf"), build(t, "sd")
	ctx := context.Background()
	ses := mtvec.NewSession()

	// Solo.
	cfg := mtvec.DefaultConfig()
	old, err := mtvec.RunSolo(tf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []mtvec.RunSpec{
		mtvec.Solo(tf, mtvec.WithConfig(cfg)),
		mtvec.Solo(tf),
	} {
		rep, err := ses.Run(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		reportsEqual(t, "solo", old, rep)
	}

	// Group.
	gcfg := mtvec.DefaultConfig()
	gcfg.Contexts = 2
	old, err = mtvec.RunGroup(tf, []*mtvec.Workload{sd}, gcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []mtvec.RunSpec{
		mtvec.Group(tf, []*mtvec.Workload{sd}, mtvec.WithConfig(gcfg)),
		mtvec.Group(tf, []*mtvec.Workload{sd}),
		mtvec.Group(tf, []*mtvec.Workload{sd}, mtvec.WithContexts(2)),
	} {
		rep, err := ses.Run(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		reportsEqual(t, "group", old, rep)
	}

	// Queue (with spans, exercising the observer-backed capture).
	qcfg := mtvec.DefaultConfig()
	qcfg.Contexts = 2
	qcfg.RecordSpans = true
	ws := []*mtvec.Workload{tf, sd}
	old, err = mtvec.RunQueue(ws, qcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []mtvec.RunSpec{
		mtvec.Queue(ws, mtvec.WithConfig(qcfg)),
		mtvec.Queue(ws, mtvec.WithContexts(2), mtvec.WithSpans()),
	} {
		rep, err := ses.Run(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		reportsEqual(t, "queue", old, rep)
	}

	// Compiled.
	c := compileDaxpy(t)
	sched := []mtvec.Invocation{{Unit: 0, N: 4096}}
	old, err = mtvec.RunCompiled(c, sched, mtvec.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ses.Run(ctx, mtvec.CompiledRun(c, sched))
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "compiled", old, rep)
}

func compileDaxpy(t *testing.T) *mtvec.Compiled {
	t.Helper()
	x := &mtvec.Array{Name: "x", Base: 0x10000, Stride: 8}
	y := &mtvec.Array{Name: "y", Base: 0x20000, Stride: 8}
	kern := &mtvec.Kernel{Name: "daxpy"}
	kern.Units = append(kern.Units, &mtvec.VectorLoop{
		Name: "daxpy",
		Body: []mtvec.Stmt{{
			Dst: y,
			E: &mtvec.Bin{Op: mtvec.Add,
				L: &mtvec.Bin{Op: mtvec.Mul, L: &mtvec.ScalarArg{Name: "a"}, R: &mtvec.Ref{Arr: x}},
				R: &mtvec.Ref{Arr: y}},
		}},
	})
	c, err := mtvec.CompileKernel(kern)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSessionCancellation: a cancelled run returns ctx.Err() and never a
// partial Report, and cancellation does not perturb determinism — the
// same spec re-run on a live context is byte-identical to an
// uncancelled run.
func TestSessionCancellation(t *testing.T) {
	w := build(t, "tf")
	ses := mtvec.NewSession()

	want, err := ses.Run(context.Background(), mtvec.Solo(w))
	if err != nil {
		t.Fatal(err)
	}

	// Already-cancelled context: error before any simulation.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := ses.Run(cancelled, mtvec.Solo(w, mtvec.WithMemLatency(77)))
	if rep != nil || err != context.Canceled {
		t.Fatalf("cancelled run: rep=%v err=%v, want nil/context.Canceled", rep, err)
	}

	// Cancellation arriving mid-run: ctx.Err(), no partial report. A
	// progress observer cancels at the first stride boundary, so the
	// cancellation deterministically lands while the machine is running.
	fresh := mtvec.NewSession()
	midCtx, midCancel := context.WithCancel(context.Background())
	defer midCancel()
	obs := mtvec.ProgressFunc(func(now, insts int64) { midCancel() })
	rep, err = fresh.Run(midCtx, mtvec.Solo(w,
		mtvec.WithObserver(obs), mtvec.WithProgressStride(1024)))
	if rep != nil || err != context.Canceled {
		t.Fatalf("mid-run cancel: rep=%v err=%v, want nil/context.Canceled", rep, err)
	}

	// The cancellation must not poison the cache: the same spec on a
	// live context simulates and matches the uncancelled result.
	rep, err = fresh.Run(context.Background(), mtvec.Solo(w))
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "post-cancel retry", want, rep)
}

// TestRunSpecValidation: every invalid option or combination yields a
// diagnostic error naming the problem, before anything simulates.
func TestRunSpecValidation(t *testing.T) {
	w := build(t, "tf")
	cases := []struct {
		name string
		spec mtvec.RunSpec
		want string
	}{
		{"nil workload", mtvec.Solo(nil), "workload"},
		{"zero contexts", mtvec.Solo(w, mtvec.WithContexts(0)), "contexts 0 out of range"},
		{"too many contexts", mtvec.Solo(w, mtvec.WithContexts(99)), "out of range"},
		{"bad latency", mtvec.Solo(w, mtvec.WithMemLatency(0)), "latency"},
		{"negative scalar latency", mtvec.Solo(w, mtvec.WithScalarLatency(-1)), "scalar latency"},
		{"bad xbar", mtvec.Solo(w, mtvec.WithXbar(0)), "crossbar"},
		{"unknown policy", mtvec.Solo(w, mtvec.WithPolicy("fifo")), "unknown policy"},
		{"nil policy instance", mtvec.Solo(w, mtvec.WithPolicyInstance(nil)), "nil policy"},
		{"dual-scalar contexts", mtvec.Solo(w, mtvec.WithContexts(3), mtvec.WithDualScalar(true)), "dual-scalar"},
		{"issue width zero", mtvec.Solo(w, mtvec.WithIssueWidth(0)), "issue width"},
		{"issue width beyond contexts", mtvec.Solo(w, mtvec.WithIssueWidth(4)), "issue width"},
		{"bad ports", mtvec.Solo(w, mtvec.WithMemPorts(0, 1)), "ports"},
		{"bad banks", mtvec.Solo(w, mtvec.WithMemBanks(0, 1)), "bank"},
		{"non-pow2 banks", mtvec.Solo(w, mtvec.WithMemBanks(3, 1)), "power of two"},
		{"nil observer", mtvec.Solo(w, mtvec.WithObserver(nil)), "observer"},
		{"negative stride", mtvec.Solo(w, mtvec.WithProgressStride(-1)), "stride"},
		{"negative max cycles", mtvec.Solo(w, mtvec.WithMaxCycles(-1)), "cycle"},
		{"negative max insts", mtvec.Solo(w, mtvec.WithMaxThread0Insts(-1)), "instruction"},
		{"group context mismatch", mtvec.Group(w, nil, mtvec.WithContexts(3)), "contexts"},
		{"group nil companion", mtvec.Group(w, []*mtvec.Workload{nil}), "companion"},
		{"empty queue", mtvec.Queue(nil), "at least one"},
		{"nil compiled", mtvec.CompiledRun(nil, nil), "compiled"},
		{"no mode", mtvec.RunSpec{}, "no mode"},
	}
	ses := mtvec.NewSession()
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate() = %v, want containing %q", c.name, err, c.want)
			continue
		}
		if rep, rerr := ses.Run(context.Background(), c.spec); rep != nil || rerr == nil {
			t.Errorf("%s: Run returned rep=%v err=%v for invalid spec", c.name, rep, rerr)
		}
	}

	// Multiple problems surface together in one joined diagnostic.
	err := mtvec.Solo(w, mtvec.WithMemLatency(0), mtvec.WithPolicy("fifo")).Validate()
	if err == nil || !strings.Contains(err.Error(), "latency") || !strings.Contains(err.Error(), "policy") {
		t.Errorf("joined diagnostics missing: %v", err)
	}
}

// TestSessionMemoization: the same spec requested by many concurrent
// callers simulates exactly once, and all callers share the instance.
func TestSessionMemoization(t *testing.T) {
	w := build(t, "sd")
	ses := mtvec.NewSession()
	const goroutines = 16
	reports := make([]*mtvec.Report, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = ses.Run(context.Background(), mtvec.Solo(w, mtvec.WithMemLatency(60)))
		}(i)
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if reports[i] != reports[0] {
			t.Fatal("concurrent requesters got different report instances")
		}
	}
	if n := ses.Simulations(); n != 1 {
		t.Fatalf("%d simulations for one spec under contention", n)
	}

	// A distinct spec is a distinct simulation; an identical one is not.
	if _, err := ses.Run(context.Background(), mtvec.Solo(w, mtvec.WithMemLatency(61))); err != nil {
		t.Fatal(err)
	}
	if _, err := ses.Run(context.Background(), mtvec.Solo(w, mtvec.WithMemLatency(60))); err != nil {
		t.Fatal(err)
	}
	if n := ses.Simulations(); n != 2 {
		t.Fatalf("simulations = %d, want 2", n)
	}

	// Observer-carrying specs bypass the cache: observation is a side
	// effect that must happen on every Run.
	var calls int
	obs := mtvec.ProgressFunc(func(now, insts int64) { calls++ })
	spec := mtvec.Solo(w, mtvec.WithMemLatency(60), mtvec.WithObserver(obs), mtvec.WithProgressStride(1024))
	for i := 0; i < 2; i++ {
		if _, err := ses.Run(context.Background(), spec); err != nil {
			t.Fatal(err)
		}
	}
	if n := ses.Simulations(); n != 4 {
		t.Fatalf("observer specs should always simulate: simulations = %d, want 4", n)
	}
	if calls == 0 {
		t.Fatal("observer never called")
	}
}

// TestSessionRunAll: batch results arrive in input order and memoize
// across the batch; a WithoutMemo session simulates every request.
func TestSessionRunAll(t *testing.T) {
	tf, sd := build(t, "tf"), build(t, "sd")
	ses := mtvec.NewSession(mtvec.WithJobs(4))
	specs := []mtvec.RunSpec{
		mtvec.Solo(tf),
		mtvec.Solo(sd),
		mtvec.Solo(tf), // duplicate: shared, not re-simulated
		mtvec.Queue([]*mtvec.Workload{tf, sd}, mtvec.WithContexts(2)),
	}
	reps, err := ses.RunAll(context.Background(), specs...)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(specs) {
		t.Fatalf("got %d reports", len(reps))
	}
	if reps[0] != reps[2] {
		t.Fatal("duplicate specs in a batch should share one simulation")
	}
	if n := ses.Simulations(); n != 3 {
		t.Fatalf("simulations = %d, want 3", n)
	}

	serial := mtvec.NewSession(mtvec.WithJobs(1))
	sreps, err := serial.RunAll(context.Background(), specs...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reps {
		reportsEqual(t, "jobs=1 vs jobs=4", reps[i], sreps[i])
	}

	plain := mtvec.NewSession(mtvec.WithoutMemo())
	if _, err := plain.RunAll(context.Background(), specs[:3]...); err != nil {
		t.Fatal(err)
	}
	if n := plain.Simulations(); n != 3 {
		t.Fatalf("memo-less session simulations = %d, want 3", n)
	}
}

// TestSessionObserverEvents: spans streamed via observer match the
// report's span capture, and thread switches are observed on a
// multithreaded run.
func TestSessionObserverEvents(t *testing.T) {
	tf, sd := build(t, "tf"), build(t, "sd")
	ws := []*mtvec.Workload{tf, sd}

	rec := &mtvec.SpanRecorder{}
	switches := &mtvec.SwitchCounter{}
	rep, err := mtvec.NewSession().Run(context.Background(),
		mtvec.Queue(ws, mtvec.WithContexts(2), mtvec.WithSpans(), mtvec.WithObserver(rec, switches)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Spans) == 0 || !reflect.DeepEqual(rep.Spans, rec.Spans) {
		t.Fatalf("observer spans %v != report spans %v", rec.Spans, rep.Spans)
	}
	if switches.Switches == 0 {
		t.Fatal("no thread switches observed on a 2-context queue run")
	}
}
