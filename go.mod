module mtvec

go 1.24
