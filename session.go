package mtvec

import (
	"net/http"
	"sync"

	"mtvec/internal/core"
	"mtvec/internal/session"
	"mtvec/internal/store"
)

// Unified run API: Session + RunSpec + functional options.
//
// A Session is the one entry point for every simulation methodology:
//
//	ses := mtvec.NewSession()
//	rep, err := ses.Run(ctx, mtvec.Solo(w, mtvec.WithMemLatency(100)))
//
// Sessions memoize: identical memoizable specs simulate exactly once,
// concurrent requesters share the result, and RunAll fans batches out
// over a bounded worker gate with deterministic collection order.

// Session executes RunSpecs with memoization, a global concurrency
// bound, and context cancellation. See internal/session for the full
// concurrency and determinism contract.
type Session = session.Session

// SessionOption configures NewSession.
type SessionOption = session.SessionOption

// RunSpec declares one simulation point: mode, workloads, and machine
// options. Build one with Solo, Group, Queue or Compiled.
type RunSpec = session.RunSpec

// RunMode is a RunSpec's methodology.
type RunMode = session.Mode

// Run modes.
const (
	ModeSolo     = session.ModeSolo
	ModeGroup    = session.ModeGroup
	ModeQueue    = session.ModeQueue
	ModeCompiled = session.ModeCompiled
)

// RunOption configures a RunSpec's machine or stop rule.
type RunOption = session.Option

// Observer receives streaming run events: coarse-stride progress,
// decode thread switches, and program spans (the Figure 9 events).
type Observer = core.Observer

// SpanRecorder is the built-in execution-profile observer.
type SpanRecorder = core.SpanRecorder

// ProgressFunc adapts a function to a progress-only Observer.
type ProgressFunc = core.ProgressFunc

// SwitchCounter is a built-in observer counting decode thread switches.
type SwitchCounter = core.SwitchCounter

// Store is a persistent, content-addressed on-disk result store — the
// second cache tier under a Session's in-memory memo. Records carry
// integrity hashes and a format version; corrupt or stale entries are
// recomputed, never trusted, and cross-process single-flight (lock
// files) lets any number of processes share one store directory while
// simulating each distinct point once. See docs/API.md.
type Store = store.Store

// StoreBackend is the pluggable interface behind a Session's persistent
// tier. Implementations: the on-disk Store/store.Dir, a remote worker's
// record API (NewPeerStore), and a local-disk-warmed-from-peers
// composite (NewTieredStore).
type StoreBackend = store.Backend

// StoreStats is a snapshot of a backend's hit/miss/write/corrupt
// counters (plus PeerHits for remote tiers).
type StoreStats = store.Stats

// StoreOptions tunes an on-disk store (lock-file steal age and poll
// interval); the zero value selects every default.
type StoreOptions = store.Options

// OpenStore creates (if needed) and opens the result store rooted at
// dir. Attach it with WithStore, Session.SetStore or Env.SetStore.
func OpenStore(dir string) (*Store, error) { return store.Open(dir) }

// OpenStoreOptions is OpenStore with explicit tuning.
func OpenStoreOptions(dir string, o StoreOptions) (*Store, error) {
	return store.OpenOptions(dir, o)
}

// NewPeerStore opens a read-through backend over another mtvserve
// worker's record API at the given base URL; a nil client selects a
// default with a 30s timeout. Peer records are re-verified on receipt,
// and an unreachable peer degrades to a miss, never an error.
func NewPeerStore(base string, client *http.Client) (StoreBackend, error) {
	return store.NewHTTPPeer(base, client)
}

// NewTieredStore composes a local on-disk store with remote peers:
// lookups try local disk first, then each peer in order, and peer hits
// are written back locally — so a fresh node warm-starts from the
// fleet's results. local may be nil (diskless); nil peers are skipped.
func NewTieredStore(local *Store, peers ...StoreBackend) StoreBackend {
	return store.NewTiered(local, peers...)
}

// RunSource names the cache tier that answered a Session.RunTracked
// call: a fresh simulation, the in-memory memo, or the persistent
// store.
type RunSource = session.Source

// Run sources.
const (
	RunFromSim   = session.SourceSim
	RunFromMemo  = session.SourceMemo
	RunFromStore = session.SourceStore
	RunFromPeer  = session.SourcePeer
)

// NewSession creates a run session. Memoization is on by default
// (disable with WithoutMemo); the simulation concurrency bound defaults
// to runtime.NumCPU() (change with WithJobs or Session.SetJobs).
func NewSession(opts ...SessionOption) *Session { return session.New(opts...) }

// WithJobs bounds a new session's concurrent simulations; n <= 0
// selects runtime.NumCPU().
func WithJobs(n int) SessionOption { return session.WithJobs(n) }

// WithoutMemo disables a new session's run cache: every Run simulates.
func WithoutMemo() SessionOption { return session.WithoutMemo() }

// WithoutBatching disables RunAll's lockstep batching on a new session:
// every sweep point dispatches through the per-point path. Results are
// byte-identical either way (see docs/PERF.md, "Lockstep batching");
// the knob exists for benchmarking and as an escape hatch. Toggle at
// runtime with Session.SetBatching.
func WithoutBatching() SessionOption { return session.WithoutBatching() }

// WithBatchWidth pins how many lanes one lockstep batch carries on a
// new session, bypassing the adaptive shaping model; 0 restores it.
// Width is scheduling only — results and cache keys never depend on it.
// Panics on a value Session.SetBatchWidth would reject.
func WithBatchWidth(n int) SessionOption { return session.WithBatchWidth(n) }

// WithBatchWindow pins a new session's lockstep window (dispatched
// instructions per lane per round), bypassing the adaptive shaping
// model; 0 restores it. Like width, scheduling only. Panics on a value
// Session.SetBatchWindow would reject.
func WithBatchWindow(n int64) SessionOption { return session.WithBatchWindow(n) }

// RunResult is one Session.RunAllTracked point: the Report (nil on
// error), the cache tier that answered, the point's wall time inside
// the call — for a batched point, the time until its whole batch
// resolved — and the point's error.
type RunResult = session.Result

// WithStore attaches a persistent result backend to a new session; runs
// with stable content identities are then served from and written
// through to it.
func WithStore(st StoreBackend) SessionOption { return session.WithStore(st) }

// Solo declares a reference run: w alone on thread 0, to completion.
func Solo(w *Workload, opts ...RunOption) RunSpec { return session.Solo(w, opts...) }

// Group declares a Section 4.1 grouped run: primary on thread 0 while
// companions restart until it completes. Contexts default to
// 1+len(companions) when WithContexts is not given.
func Group(primary *Workload, companions []*Workload, opts ...RunOption) RunSpec {
	return session.Group(primary, companions, opts...)
}

// Queue declares a Section 7 job-queue run: ws in order, drained by all
// contexts.
func Queue(ws []*Workload, opts ...RunOption) RunSpec { return session.Queue(ws, opts...) }

// CompiledRun declares a run of a user-compiled kernel under the given
// invocation schedule (thread 0 only).
func CompiledRun(c *Compiled, schedule []Invocation, opts ...RunOption) RunSpec {
	return session.Compiled(c, schedule, opts...)
}

// Machine options. Options apply in order (later wins) and validate
// eagerly: every invalid option or combination surfaces as one joined
// diagnostic error from Session.Run or RunSpec.Validate.

// WithConfig replaces the spec's base configuration wholesale; granular
// options given after it still apply on top.
func WithConfig(cfg Config) RunOption { return session.WithConfig(cfg) }

// WithContexts sets the hardware context count (the upper bound is the
// machine shape's MaxContexts; 8 on the reference architecture).
func WithContexts(n int) RunOption { return session.WithContexts(n) }

// WithArch replaces the whole machine shape with the given spec (a
// preset like ArchConvexC3400/ArchVP2000/ArchCrayLikePorts, or a
// modified copy). Granular options given after it still apply on top.
func WithArch(spec ArchSpec) RunOption { return session.WithArch(spec) }

// WithRegFile sets the vector register file organization; build the
// workloads for the same organization (BuildWorkloadsRegFile) when it
// changes the register count or length.
func WithRegFile(rf RegFile) RunOption { return session.WithRegFile(rf) }

// WithVLen sets the vector register length in elements (the Section 8
// register-file study's central axis).
func WithVLen(n int) RunOption { return session.WithVLen(n) }

// WithBankPorts sets each register bank's read and write ports into the
// crossbars (the reference machine has 2 read, 1 write).
func WithBankPorts(read, write int) RunOption { return session.WithBankPorts(read, write) }

// WithMemLatency sets the main-memory latency in cycles.
func WithMemLatency(cycles int) RunOption { return session.WithMemLatency(cycles) }

// WithScalarLatency sets the scalar-cache latency; 0 disables the cache.
func WithScalarLatency(cycles int) RunOption { return session.WithScalarLatency(cycles) }

// WithXbar sets both register-file crossbar latencies (Section 8).
func WithXbar(cycles int) RunOption { return session.WithXbar(cycles) }

// WithPolicy selects a thread-switch policy by name (PolicyNames).
func WithPolicy(name string) RunOption { return session.WithPolicy(name) }

// WithPolicyInstance installs a custom policy value; machines clone it
// per run, so the instance may be shared across specs.
func WithPolicyInstance(p Policy) RunOption { return session.WithPolicyInstance(p) }

// WithDualScalar toggles the Section 9 Fujitsu VP2000 dual-scalar mode
// (requires exactly 2 contexts).
func WithDualScalar(enabled bool) RunOption { return session.WithDualScalar(enabled) }

// WithIssueWidth sets decode slots per cycle (1 is the paper's machine).
func WithIssueWidth(n int) RunOption { return session.WithIssueWidth(n) }

// WithMemPorts switches to dedicated load/store address ports (the
// Cray-like Section 10 extension; also disables the scalar cache, like
// the ablation it reproduces). Apply after WithMemLatency.
func WithMemPorts(load, store int) RunOption { return session.WithMemPorts(load, store) }

// WithMemBanks enables the banked-conflict memory model.
func WithMemBanks(banks, busy int) RunOption { return session.WithMemBanks(banks, busy) }

// WithSpans captures the Figure 9 execution profile into Report.Spans.
func WithSpans() RunOption { return session.WithSpans() }

// WithObserver attaches streaming observers; a spec carrying observers
// is never served from the memo cache.
func WithObserver(obs ...Observer) RunOption { return session.WithObserver(obs...) }

// WithProgressStride sets the simulated-cycle interval between
// Observer.Progress events; 0 selects the default (65536 cycles).
func WithProgressStride(cycles int64) RunOption { return session.WithProgressStride(cycles) }

// WithMaxCycles bounds the run's cycle count (safety stop; 0 disables).
func WithMaxCycles(n int64) RunOption { return session.WithMaxCycles(n) }

// WithMaxThread0Insts stops once thread 0 has dispatched n dynamic
// instructions (the Section 4.1 partial reference runs; 0 disables).
func WithMaxThread0Insts(n int64) RunOption { return session.WithMaxThread0Insts(n) }

// defaultSession backs the deprecated Run* wrappers. It is memo-less so
// the wrappers keep their original semantics exactly: every call
// simulates and returns a fresh Report.
var defaultSession = sync.OnceValue(func() *Session {
	return session.New(session.WithoutMemo())
})

// DefaultSession returns the process-wide session behind the deprecated
// Run* wrappers: memo-less, concurrency-bounded at runtime.NumCPU().
func DefaultSession() *Session { return defaultSession() }

// IsContextErr reports whether err came from a cancelled or expired
// context — the one error class Session.Run never memoizes. Useful for
// distinguishing "the run was aborted" from "the spec or simulation
// failed".
func IsContextErr(err error) bool { return session.IsContextErr(err) }
