// Benchmark harness: one testing.B benchmark per paper table and figure
// (plus the extension studies), each regenerating the artifact end to end
// on a fresh environment. Run with:
//
//	go test -bench=. -benchmem
//
// The default bench scale (3e-5 of Table 3's millions) keeps a full pass
// fast; set MTVEC_BENCH_SCALE to trade time for fidelity, e.g.:
//
//	MTVEC_BENCH_SCALE=1e-3 go test -bench=Fig10 -benchtime=1x
//
// cmd/mtvbench is the front-end that prints the reproduced rows/series at
// full reproduction scale.
package mtvec_test

import (
	"context"
	"fmt"
	"os"
	"testing"

	"mtvec"
)

// The bench scale is resolved and validated exactly once, in TestMain, so
// a bad MTVEC_BENCH_SCALE fails the whole run up front instead of
// surfacing per benchmark at bench runtime.
var benchScaleValue float64

func TestMain(m *testing.M) {
	v, err := mtvec.BenchScale()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	benchScaleValue = v
	os.Exit(m.Run())
}

func benchScale(b *testing.B) float64 {
	b.Helper()
	return benchScaleValue
}

// benchExperiment regenerates one experiment per iteration on a fresh
// (un-memoized) environment.
func benchExperiment(b *testing.B, id string) {
	scale := benchScale(b)
	exp := mtvec.ExperimentByID(id)
	if exp == nil {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := mtvec.NewEnv(scale)
		res, err := exp.Run(env)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables) == 0 {
			b.Fatal("empty result")
		}
	}
}

// Tables.

func BenchmarkTable1Latencies(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2Groupings(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3Counts(b *testing.B)    { benchExperiment(b, "table3") }

// Figures.

func BenchmarkFig4StateBreakdown(b *testing.B) { benchExperiment(b, "fig4") }
func BenchmarkFig5MemIdle(b *testing.B)        { benchExperiment(b, "fig5") }
func BenchmarkFig6Speedup(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkFig7Occupation(b *testing.B)     { benchExperiment(b, "fig7") }
func BenchmarkFig8VOPC(b *testing.B)           { benchExperiment(b, "fig8") }
func BenchmarkFig9Profile(b *testing.B)        { benchExperiment(b, "fig9") }
func BenchmarkFig10LatencySweep(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11Crossbar(b *testing.B)      { benchExperiment(b, "fig11") }
func BenchmarkFig12DualScalar(b *testing.B)    { benchExperiment(b, "fig12") }

// Extension / ablation studies.

func BenchmarkExtPolicies(b *testing.B) { benchExperiment(b, "ext-policies") }
func BenchmarkExtPorts(b *testing.B)    { benchExperiment(b, "ext-ports") }
func BenchmarkExtBanks(b *testing.B)    { benchExperiment(b, "ext-banks") }
func BenchmarkExtIssue(b *testing.B)    { benchExperiment(b, "ext-issue") }
func BenchmarkExtCompiler(b *testing.B) { benchExperiment(b, "ext-compiler") }

// Engine throughput: simulated cycles per wall-clock second on the
// reference machine and a saturated 4-context machine.

func benchEngine(b *testing.B, contexts int) {
	scale := benchScale(b)
	var suite []*mtvec.Workload
	for _, spec := range mtvec.QueueOrder() {
		w, err := spec.Build(scale)
		if err != nil {
			b.Fatal(err)
		}
		suite = append(suite, w)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		cfg := mtvec.DefaultConfig()
		cfg.Contexts = contexts
		rep, err := mtvec.RunQueue(suite, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cycles += rep.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds()/1e6, "Mcycles/s")
}

func BenchmarkEngineReference(b *testing.B)   { benchEngine(b, 1) }
func BenchmarkEngineFourThreads(b *testing.B) { benchEngine(b, 4) }

// Session API overhead: the same solo run through the direct machine
// path, through a memo-less Session (spec validation + gate + context
// plumbing per run), and through a memoizing Session (cache-hit path).
// The first two must be within noise of each other — the redesign's
// per-run overhead budget.

func benchSoloWorkload(b *testing.B) *mtvec.Workload {
	b.Helper()
	w, err := mtvec.WorkloadByShort("tf").Build(benchScale(b))
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func BenchmarkDirectMachineRun(b *testing.B) {
	w := benchSoloWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := mtvec.NewMachine(mtvec.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := m.SetThreadStream(0, w.Spec.Short, w.Stream()); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(mtvec.Stop{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSessionRun(b *testing.B) {
	w := benchSoloWorkload(b)
	ses := mtvec.NewSession(mtvec.WithoutMemo())
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ses.Run(ctx, mtvec.Solo(w)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSessionRunMemoized(b *testing.B) {
	w := benchSoloWorkload(b)
	ses := mtvec.NewSession()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ses.Run(ctx, mtvec.Solo(w)); err != nil {
			b.Fatal(err)
		}
	}
}

// Lockstep batch engine: the same memo-missed eight-point latency sweep
// over one compiled kernel, dispatched per point (batching off) and
// through the batch engine. Both sessions run on a single gate slot so
// the comparison is work per core, not parallelism: the batch's win is
// the trace synthesis + predecode hoisted out of the per-point loop and
// the shared trace window staying cache-hot across the eight lanes
// (docs/PERF.md, "Lockstep batching").

func benchSweepCompiled(b *testing.B) *mtvec.Compiled {
	b.Helper()
	x := &mtvec.Array{Name: "x", Base: 0x10000, Stride: 8}
	y := &mtvec.Array{Name: "y", Base: 0x20000, Stride: 8}
	kern := &mtvec.Kernel{Name: "daxpy-setup"}
	kern.Units = append(kern.Units,
		&mtvec.VectorLoop{
			Name: "daxpy",
			Body: []mtvec.Stmt{{
				Dst: y,
				E: &mtvec.Bin{Op: mtvec.Add,
					L: &mtvec.Bin{Op: mtvec.Mul, L: &mtvec.ScalarArg{Name: "a"}, R: &mtvec.Ref{Arr: x}},
					R: &mtvec.Ref{Arr: y}},
			}},
		},
		&mtvec.ScalarLoop{Name: "setup", Loads: 2, Stores: 1, IntOps: 3, FPOps: 1},
	)
	c, err := mtvec.CompileKernel(kern)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func benchBatchSweep(b *testing.B, batching bool) {
	c := benchSweepCompiled(b)
	sched := []mtvec.Invocation{
		{Unit: 1, N: 1 << 14},
		{Unit: 0, N: 1 << 14},
		{Unit: 1, N: 1 << 14},
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := []mtvec.SessionOption{mtvec.WithJobs(1)}
		if !batching {
			opts = append(opts, mtvec.WithoutBatching())
		}
		ses := mtvec.NewSession(opts...)
		specs := make([]mtvec.RunSpec, 8)
		for k := range specs {
			specs[k] = mtvec.CompiledRun(c, sched, mtvec.WithMemLatency(30+10*k))
		}
		if _, err := ses.RunAll(ctx, specs...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchSweep(b *testing.B)    { benchBatchSweep(b, true) }
func BenchmarkPerPointSweep(b *testing.B) { benchBatchSweep(b, false) }
