// Package mtvec is a library reproduction of "Multithreaded Vector
// Architectures" (Espasa & Valero, HPCA-3, 1997): a trace-driven,
// cycle-accurate model of a Convex C3400-class vector processor and its
// multithreaded extension, together with calibrated reconstructions of
// the paper's ten Perfect Club / SPECfp92 benchmarks and a harness that
// regenerates every table and figure of the evaluation.
//
// # Quick start
//
// Build a workload, open a Session, and run it:
//
//	w, _ := mtvec.WorkloadByShort("tf").Build(mtvec.DefaultScale)
//	ses := mtvec.NewSession()
//	rep, _ := ses.Run(ctx, mtvec.Solo(w))
//	fmt.Println(rep.Cycles, rep.MemOccupation())
//
// Multithread it — a grouped run with a restarting companion, on a
// 2-context machine at 80-cycle memory latency:
//
//	spec := mtvec.Group(w, []*mtvec.Workload{companion}, mtvec.WithMemLatency(80))
//	rep2, _ := ses.Run(ctx, spec)
//
// Sessions are concurrency-safe and memoized: identical specs simulate
// exactly once, RunAll fans batches out over a bounded worker gate, ctx
// cancellation/deadlines abort cleanly (never a partial Report), and
// observers (WithObserver, WithSpans) stream progress, thread-switch and
// execution-profile events from inside a run.
//
// Define your own kernels with the kernel IR (Array, VectorLoop, ...),
// compile them with CompileKernel, and run them with CompiledRun; or
// regenerate the paper's evaluation with Experiments and NewEnv.
//
// RunExperiments executes the whole evaluation concurrently: shared
// simulation points are simulated exactly once (Env is a Session-backed
// singleflight cache) and results are byte-identical at any worker count:
//
//	env := mtvec.NewEnv(mtvec.DefaultScale)
//	results, stats, _ := mtvec.RunExperiments(env, mtvec.Experiments(), 0)
//
// The RunSolo, RunGroup, RunQueue and RunCompiled functions predate the
// Session API and remain as deprecated wrappers; see docs/API.md for the
// migration guide.
package mtvec

import (
	"context"
	"fmt"
	"io"

	"mtvec/internal/arch"
	"mtvec/internal/core"
	"mtvec/internal/experiments"
	"mtvec/internal/isa"
	"mtvec/internal/kernel"
	"mtvec/internal/memsys"
	"mtvec/internal/prog"
	"mtvec/internal/report"
	"mtvec/internal/runner"
	"mtvec/internal/sched"
	"mtvec/internal/stats"
	"mtvec/internal/trace"
	"mtvec/internal/vcomp"
	"mtvec/internal/workload"
)

// Machine model.
type (
	// Config selects a machine variant (contexts, latencies, memory,
	// policy, dual-scalar mode).
	Config = core.Config
	// Machine is one single-use simulation instance.
	Machine = core.Machine
	// Stop tells Run when to finish.
	Stop = core.Stop
	// JobQueue feeds a fixed job list to any number of contexts.
	JobQueue = core.JobQueue
	// Report carries a run's metrics.
	Report = stats.Report
	// ThreadReport is per-context progress accounting.
	ThreadReport = stats.ThreadReport
	// Span is one Figure 9 execution-profile segment.
	Span = stats.Span
	// LatencyTable is the Table 1 latency set.
	LatencyTable = isa.LatencyTable
	// MemConfig configures the memory subsystem.
	MemConfig = memsys.Config
	// Policy is a thread-switch policy.
	Policy = sched.Policy
	// ArchSpec is a declarative machine shape: register file, FU mix,
	// latencies, memory. Config embeds one; see docs/ARCH.md.
	ArchSpec = arch.Spec
	// RegFile is a vector register file organization (count, length,
	// banking, ports, partitioning).
	RegFile = arch.RegFile
)

// Machine-shape presets (see docs/ARCH.md).

// ArchConvexC3400 returns the reference shape — the paper's machine, and
// the default of every Config and RunSpec.
func ArchConvexC3400() ArchSpec { return arch.ConvexC3400() }

// ArchVP2000 returns the Fujitsu VP2000-style shape of the Section 9
// comparison (large reconfigurable register file, two general pipes).
func ArchVP2000() ArchSpec { return arch.VP2000() }

// ArchCrayLikePorts returns the Section 10 Cray-like variant: short
// single-ported registers over 2-load/1-store memory ports.
func ArchCrayLikePorts() ArchSpec { return arch.CrayLikePorts() }

// ArchPresets returns the named machine shapes, reference first.
func ArchPresets() []ArchSpec { return arch.Presets() }

// ArchByName returns the preset with the given name ("convex-c3400",
// "vp2000", "cray-ports"), or false.
func ArchByName(name string) (ArchSpec, bool) { return arch.ByName(name) }

// DefaultRegFile returns the reference register-file organization: 8
// registers of 128 elements, paired into 4 banks with 2R/1W ports.
func DefaultRegFile() RegFile { return arch.DefaultRegFile() }

// Workloads.
type (
	// Workload is a built benchmark: compiled program, trace, statistics.
	Workload = workload.Workload
	// WorkloadSpec is a benchmark recipe with its Table 3 targets.
	WorkloadSpec = workload.Spec
	// ProgramStats is the dynamic operation accounting (Table 3 columns).
	ProgramStats = prog.Stats
	// Trace is a captured execution (the Dixie-analogue container).
	Trace = trace.Trace
	// Stream is a dynamic instruction stream consumed by machines.
	Stream = prog.Stream
)

// Kernel IR and compiler, for user-defined programs.
type (
	Array      = kernel.Array
	Expr       = kernel.Expr
	Ref        = kernel.Ref
	Gather     = kernel.Gather
	ScalarArg  = kernel.ScalarArg
	Bin        = kernel.Bin
	Un         = kernel.Un
	Stmt       = kernel.Stmt
	VectorLoop = kernel.VectorLoop
	ScalarLoop = kernel.ScalarLoop
	Kernel     = kernel.Kernel
	// Compiled is a kernel lowered to an ISA program plus trace
	// emission metadata.
	Compiled = vcomp.Compiled
	// Invocation requests one loop execution with a trip count.
	Invocation = vcomp.Invocation
)

// Kernel operators.
const (
	Add  = kernel.Add
	Sub  = kernel.Sub
	Mul  = kernel.Mul
	Div  = kernel.Div
	Sqrt = kernel.Sqrt
)

// Experiment harness.
type (
	// Experiment reproduces one paper table/figure or an ablation.
	Experiment = experiments.Experiment
	// ExperimentResult is a reproduced artifact.
	ExperimentResult = experiments.Result
	// Env memoizes workloads and runs across experiments; it is safe
	// for concurrent use and simulates each distinct point exactly once.
	Env = experiments.Env
	// SuiteStats summarizes a RunExperiments execution (wall clock,
	// serial-equivalent busy time, simulation count).
	SuiteStats = experiments.SuiteStats
	// Table is a renderable result grid.
	Table = report.Table
)

// DefaultScale is the standard reproduction scale: Table 3 counts are in
// millions; workloads are built at 1/1000 of them.
const DefaultScale = workload.DefaultScale

// DefaultConfig returns the reference architecture (1 context, 50-cycle
// memory latency, Table 1 latencies).
func DefaultConfig() Config { return core.DefaultConfig() }

// NewMachine builds a machine.
func NewMachine(cfg Config) (*Machine, error) { return core.New(cfg) }

// Workloads returns the ten benchmark specs in Table 3 order.
func Workloads() []*WorkloadSpec { return workload.Specs() }

// WorkloadByShort looks a spec up by its two-letter tag (sw, hy, ...).
func WorkloadByShort(short string) *WorkloadSpec { return workload.ByShort(short) }

// WorkloadByName looks a spec up by program name (swm256, ...).
func WorkloadByName(name string) *WorkloadSpec { return workload.ByName(name) }

// QueueOrder returns the Section 7 fixed job order.
func QueueOrder() []*WorkloadSpec { return workload.QueueOrder() }

// BenchWorkloads returns the real vectorizable benchmark suite (axpy,
// dot, gemm, spmv, 1-D/2-D stencils, blackscholes) in catalog order.
// The kernels register through the same catalog as the Table 3
// programs — WorkloadByShort/WorkloadByName resolve them, and sessions
// sweep, memoize, persist, batch and serve them identically. See
// docs/BENCHMARKS.md.
func BenchWorkloads() []*WorkloadSpec { return workload.BenchSpecs() }

// WorkloadFromTrace wraps an externally produced trace (DecodeTrace or
// ImportRVVTrace) as a runnable Workload: replay-validated, profiled,
// memoized per-process, but never store-persisted (an imported trace
// has no content-addressed build recipe). name may be empty to use the
// trace's program name.
func WorkloadFromTrace(name string, t *Trace) (*Workload, error) {
	return workload.FromTrace(name, t)
}

// ExportRVVTrace writes the trace as mtvrvv/1 text — the RVV-flavoured
// exchange format of docs/BENCHMARKS.md — one dynamic instruction per
// line.
func ExportRVVTrace(w io.Writer, t *Trace) error { return trace.ExportRVV(w, t) }

// ImportRVVTrace parses an mtvrvv text trace (hand-written or generated
// by external tooling), lowering LMUL register groups and masked ops
// onto the engine's forms. Malformed inputs are rejected with one
// line-numbered diagnostic per defect, joined.
func ImportRVVTrace(r io.Reader) (*Trace, error) { return trace.ImportRVV(r) }

// PolicyByName returns a thread-switch policy ("unfair", "roundrobin",
// "everycycle", "lru"), or nil.
func PolicyByName(name string) Policy { return sched.ByName(name) }

// PolicyNames lists the available policies.
func PolicyNames() []string { return sched.Names() }

// CompileKernel lowers a kernel to a compiled program.
func CompileKernel(k *Kernel) (*Compiled, error) { return vcomp.Compile(k) }

// NewEnv creates an experiment environment at the given scale.
func NewEnv(scale float64) *Env { return experiments.NewEnv(scale) }

// Experiments returns every reproduction experiment in paper order.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID returns one experiment ("table3", "fig10", ...), or nil.
func ExperimentByID(id string) *Experiment { return experiments.ByID(id) }

// ExperimentIDs lists the experiment identifiers.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiments executes the experiments on env with at most jobs
// concurrent simulations (jobs <= 0 selects runtime.NumCPU()). Shared
// simulation points are run exactly once; results are collected in
// experiment order and are byte-identical for any jobs value.
func RunExperiments(env *Env, exps []Experiment, jobs int) ([]*ExperimentResult, *SuiteStats, error) {
	return experiments.RunSuite(env, exps, jobs)
}

// RunExperimentsContext is RunExperiments under a context: cancellation
// or deadline expiry aborts in-flight simulations and returns ctx.Err()
// in the joined error; the Env's caches stay reusable afterwards.
func RunExperimentsContext(ctx context.Context, env *Env, exps []Experiment, jobs int) ([]*ExperimentResult, *SuiteStats, error) {
	return experiments.RunSuiteContext(ctx, env, exps, jobs)
}

// BuildWorkloads builds the named workloads (short tags or program
// names) concurrently on at most jobs workers, preserving input order.
// All names are validated before any build starts.
func BuildWorkloads(tags []string, scale float64, jobs int) ([]*Workload, error) {
	return BuildWorkloadsRegFile(tags, scale, jobs, RegFile{})
}

// BuildWorkloadsRegFile is BuildWorkloads with the compiler targeted at
// the given register-file organization (strip-mining length, register
// count, bank spread). The zero RegFile targets the reference
// organization. Run the results on a machine configured with the same
// organization (WithRegFile or WithArch).
func BuildWorkloadsRegFile(tags []string, scale float64, jobs int, rf RegFile) ([]*Workload, error) {
	specs := make([]*WorkloadSpec, len(tags))
	for i, tag := range tags {
		spec := workload.ByShort(tag)
		if spec == nil {
			spec = workload.ByName(tag)
		}
		if spec == nil {
			return nil, fmt.Errorf("mtvec: unknown program %q", tag)
		}
		specs[i] = spec
	}
	opts := vcomp.Options{RegFile: rf}
	ws := make([]*Workload, len(tags))
	pool := runner.New(jobs)
	err := pool.Map(len(tags), func(i int) error {
		w, err := specs[i].BuildOpts(scale, opts)
		ws[i] = w
		return err
	})
	return ws, err
}

// RunSolo runs one workload to completion on a machine built from cfg.
//
// Deprecated: use Session.Run with a Solo spec, which adds context
// cancellation, memoization and observers:
//
//	ses.Run(ctx, mtvec.Solo(w, mtvec.WithConfig(cfg)))
func RunSolo(w *Workload, cfg Config) (*Report, error) {
	return DefaultSession().Run(context.Background(), Solo(w, WithConfig(cfg)))
}

// RunGroup reproduces the Section 4.1 grouped methodology: primary runs
// once on thread 0 while companions restart until it completes.
// cfg.Contexts must equal 1+len(companions).
//
// Deprecated: use Session.Run with a Group spec:
//
//	ses.Run(ctx, mtvec.Group(primary, companions, mtvec.WithConfig(cfg)))
func RunGroup(primary *Workload, companions []*Workload, cfg Config) (*Report, error) {
	return DefaultSession().Run(context.Background(), Group(primary, companions, WithConfig(cfg)))
}

// RunQueue reproduces the Section 7 methodology: the workloads form a
// job queue drained by all contexts; the run ends when every job is done.
//
// Deprecated: use Session.Run with a Queue spec:
//
//	ses.Run(ctx, mtvec.Queue(ws, mtvec.WithConfig(cfg)))
func RunQueue(ws []*Workload, cfg Config) (*Report, error) {
	return DefaultSession().Run(context.Background(), Queue(ws, WithConfig(cfg)))
}

// RunCompiled runs a user-compiled kernel under the given invocation
// schedule on a machine built from cfg (thread 0 only).
//
// Deprecated: use Session.Run with a CompiledRun spec:
//
//	ses.Run(ctx, mtvec.CompiledRun(c, schedule, mtvec.WithConfig(cfg)))
func RunCompiled(c *Compiled, schedule []Invocation, cfg Config) (*Report, error) {
	return DefaultSession().Run(context.Background(), CompiledRun(c, schedule, WithConfig(cfg)))
}

// IdealCycles returns the paper's IDEAL lower bound for a set of
// workloads: the busy time of the most saturated resource with all
// dependences removed.
func IdealCycles(ws ...*Workload) int64 {
	all := make([]prog.Stats, len(ws))
	for i, w := range ws {
		all[i] = w.Stats
	}
	return core.IdealCycles(all...)
}

// RenderResult writes an experiment result as aligned text.
func RenderResult(w io.Writer, res *ExperimentResult) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n", res.Title); err != nil {
		return err
	}
	for _, t := range res.Tables {
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	for _, c := range res.Charts {
		if _, err := fmt.Fprintf(w, "\n%s", c); err != nil {
			return err
		}
	}
	for _, n := range res.Notes {
		if _, err := fmt.Fprintf(w, "\nnote: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// RenderResultMarkdown writes an experiment result as markdown.
func RenderResultMarkdown(w io.Writer, res *ExperimentResult) error {
	if _, err := fmt.Fprintf(w, "### %s\n\n", res.Title); err != nil {
		return err
	}
	for _, t := range res.Tables {
		if err := t.Markdown(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, c := range res.Charts {
		if _, err := fmt.Fprintf(w, "```\n%s```\n\n", c); err != nil {
			return err
		}
	}
	for _, n := range res.Notes {
		if _, err := fmt.Fprintf(w, "> %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// DynInst is one dynamic instruction of a stream.
type DynInst = isa.DynInst

// TraceStats replays a trace and returns its dynamic statistics and
// instruction count.
func TraceStats(t *Trace) (ProgramStats, int64, error) {
	n, st, err := t.Stream().Drain()
	return st, n, err
}

// EncodeTrace / DecodeTrace expose the Dixie-analogue trace container.
func EncodeTrace(w io.Writer, t *Trace) error { return t.Encode(w) }

// DecodeTrace reads a trace written by EncodeTrace.
func DecodeTrace(r io.Reader) (*Trace, error) { return trace.Decode(r) }
