// Dual scalar: the Section 9 comparison between a Fujitsu VP2000-style
// machine (two full scalar decode units sharing one vector facility) and
// the paper's multithreaded machine (one decode unit, two contexts).
package main

import (
	"context"
	"fmt"
	"log"

	"mtvec"
)

func main() {
	ctx := context.Background()
	ses := mtvec.NewSession()
	const scale = 1e-4

	var suite []*mtvec.Workload
	for _, spec := range mtvec.QueueOrder() {
		w, err := spec.Build(scale)
		if err != nil {
			log.Fatal(err)
		}
		suite = append(suite, w)
	}

	fmt.Printf("%8s %14s %14s %10s\n", "latency", "fujitsu 2ctx", "mth 2ctx", "fuj/mth")
	for _, lat := range []int{1, 50, 100} {
		base := mtvec.Queue(suite, mtvec.WithContexts(2), mtvec.WithMemLatency(lat))
		fr, err := ses.Run(ctx, base.With(mtvec.WithDualScalar(true)))
		if err != nil {
			log.Fatal(err)
		}
		mr, err := ses.Run(ctx, base)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %14d %14d %10.4f\n", lat, fr.Cycles, mr.Cycles,
			float64(fr.Cycles)/float64(mr.Cycles))
	}

	fmt.Println("\nThe dual-scalar machine's 2-instructions/cycle edge matters at")
	fmt.Println("low latency and washes out as memory latency dominates — the")
	fmt.Println("paper's argument that one time-multiplexed decode unit suffices.")
}
