// Dual scalar: the Section 9 comparison between a Fujitsu VP2000-style
// machine (two full scalar decode units sharing one vector facility) and
// the paper's multithreaded machine (one decode unit, two contexts).
package main

import (
	"fmt"
	"log"

	"mtvec"
)

func main() {
	const scale = 1e-4

	var suite []*mtvec.Workload
	for _, spec := range mtvec.QueueOrder() {
		w, err := spec.Build(scale)
		if err != nil {
			log.Fatal(err)
		}
		suite = append(suite, w)
	}

	fmt.Printf("%8s %14s %14s %10s\n", "latency", "fujitsu 2ctx", "mth 2ctx", "fuj/mth")
	for _, lat := range []int{1, 50, 100} {
		base := mtvec.DefaultConfig()
		base.Contexts = 2
		base.Mem.Latency = lat

		fuj := base
		fuj.DualScalar = true
		fr, err := mtvec.RunQueue(suite, fuj)
		if err != nil {
			log.Fatal(err)
		}
		mr, err := mtvec.RunQueue(suite, base)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %14d %14d %10.4f\n", lat, fr.Cycles, mr.Cycles,
			float64(fr.Cycles)/float64(mr.Cycles))
	}

	fmt.Println("\nThe dual-scalar machine's 2-instructions/cycle edge matters at")
	fmt.Println("low latency and washes out as memory latency dominates — the")
	fmt.Println("paper's argument that one time-multiplexed decode unit suffices.")
}
