// Custom kernel: the downstream-user scenario. Write your own loop nest
// in the kernel IR, compile it with the bank-aware vectorizing compiler,
// and measure it on reference and multithreaded machines.
//
// The kernel here is a damped 3-point relaxation with an indirect
// (gathered) source term:
//
//	for i:  out[i] = c*(u[i] + u[i+1]) + g*f[idx[i]]
//	        acc   += out[i] * w[i]
package main

import (
	"context"
	"fmt"
	"log"

	"mtvec"
)

func main() {
	u := &mtvec.Array{Name: "u", Base: 0x1_0000, Stride: 8}
	u1 := &mtvec.Array{Name: "u+1", Base: 0x1_0008, Stride: 8}
	f := &mtvec.Array{Name: "f", Base: 0x8_0000, Stride: 8}
	idx := &mtvec.Array{Name: "idx", Base: 0x9_0000, Stride: 8}
	w := &mtvec.Array{Name: "w", Base: 0xA_0000, Stride: 8}
	out := &mtvec.Array{Name: "out", Base: 0xB_0000, Stride: 8}

	k := &mtvec.Kernel{Name: "relax"}
	k.Units = append(k.Units,
		&mtvec.VectorLoop{
			Name: "relax",
			Body: []mtvec.Stmt{
				{
					Dst: out,
					E: &mtvec.Bin{Op: mtvec.Add,
						L: &mtvec.Bin{Op: mtvec.Mul,
							L: &mtvec.ScalarArg{Name: "c"},
							R: &mtvec.Bin{Op: mtvec.Add, L: &mtvec.Ref{Arr: u}, R: &mtvec.Ref{Arr: u1}}},
						R: &mtvec.Bin{Op: mtvec.Mul,
							L: &mtvec.ScalarArg{Name: "g"},
							R: &mtvec.Gather{Data: f, Index: idx}}},
				},
				{
					Reduce: "acc",
					E:      &mtvec.Bin{Op: mtvec.Mul, L: &mtvec.Ref{Arr: out}, R: &mtvec.Ref{Arr: w}},
				},
			},
		},
		&mtvec.ScalarLoop{Name: "setup", Loads: 2, Stores: 1, IntOps: 3, FPOps: 1},
	)

	c, err := mtvec.CompileKernel(k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %q: %d static instructions in %d blocks\n",
		c.Prog.Name, c.Prog.NumInsts(), len(c.Prog.Blocks))

	// One timestep = a setup pass plus a 100k-element relaxation.
	schedule := []mtvec.Invocation{
		{Unit: c.UnitIndex("setup"), N: 2_000},
		{Unit: c.UnitIndex("relax"), N: 100_000},
	}

	ctx := context.Background()
	ses := mtvec.NewSession()
	rep, err := ses.Run(ctx, mtvec.CompiledRun(c, schedule))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference machine: %d cycles, %.1f%% port occupation, VOPC %.2f\n",
		rep.Cycles, 100*rep.MemOccupation(), rep.VOPC())

	// The same kernel as two threads of a multithreaded machine: run a
	// second instance as the companion via the trace API.
	tr, err := c.Trace(schedule)
	if err != nil {
		log.Fatal(err)
	}
	cfg := mtvec.DefaultConfig()
	cfg.Contexts = 2
	m, err := mtvec.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.SetThreadStream(0, "relax-a", tr.Stream()); err != nil {
		log.Fatal(err)
	}
	if err := m.SetThreadStream(1, "relax-b", tr.Stream()); err != nil {
		log.Fatal(err)
	}
	rep2, err := m.Run(mtvec.Stop{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2-context machine, two instances: %d cycles (%.2fx the work in %.2fx the time)\n",
		rep2.Cycles, 2.0, float64(rep2.Cycles)/float64(rep.Cycles))
	fmt.Printf("port occupation rose to %.1f%%\n", 100*rep2.MemOccupation())
}
