// Scheduling: compare the paper's "unfair" run-until-block policy with
// round-robin, every-cycle interleave and LRU on a 3-context machine —
// the study the paper lists as ongoing work (Section 2).
package main

import (
	"context"
	"fmt"
	"log"

	"mtvec"
)

func main() {
	ctx := context.Background()
	ses := mtvec.NewSession()
	const scale = 1e-4

	var suite []*mtvec.Workload
	for _, spec := range mtvec.QueueOrder() {
		w, err := spec.Build(scale)
		if err != nil {
			log.Fatal(err)
		}
		suite = append(suite, w)
	}

	fmt.Printf("%-12s %12s %10s %8s %14s\n", "policy", "cycles", "mem occ", "VOPC", "lost decode")
	var unfair int64
	for _, name := range mtvec.PolicyNames() {
		rep, err := ses.Run(ctx, mtvec.Queue(suite,
			mtvec.WithContexts(3), mtvec.WithPolicy(name)))
		if err != nil {
			log.Fatal(err)
		}
		if name == "unfair" {
			unfair = rep.Cycles
		}
		fmt.Printf("%-12s %12d %9.1f%% %8.2f %14d\n",
			name, rep.Cycles, 100*rep.MemOccupation(), rep.VOPC(), rep.LostDecode)
	}

	fmt.Printf("\nunfair baseline: %d cycles. The paper chose run-until-block to\n", unfair)
	fmt.Println("preserve chaining windows; every-cycle interleave sacrifices them.")
}
