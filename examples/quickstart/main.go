// Quickstart: build one of the paper's benchmark reconstructions, run it
// on the reference Convex C3400-class machine, then on a 2-context
// multithreaded machine with a companion program, and compare — all
// through the Session API (context-aware, memoized, observable).
package main

import (
	"context"
	"fmt"
	"log"

	"mtvec"
)

func main() {
	ctx := context.Background()
	ses := mtvec.NewSession()

	// Scale 1e-3 reproduces Table 3 at thousandth size (the default).
	const scale = mtvec.DefaultScale

	flo52, err := mtvec.WorkloadByShort("tf").Build(scale)
	if err != nil {
		log.Fatal(err)
	}
	swm256, err := mtvec.WorkloadByShort("sw").Build(scale)
	if err != nil {
		log.Fatal(err)
	}

	// Reference machine: one context, single memory port, latency 50.
	solo, err := ses.Run(ctx, mtvec.Solo(flo52))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flo52 on the reference machine:\n")
	fmt.Printf("  cycles          %d\n", solo.Cycles)
	fmt.Printf("  mem occupation  %.1f%%\n", 100*solo.MemOccupation())
	fmt.Printf("  mem-port idle   %.1f%% of cycles\n", 100*solo.MemIdleFraction())
	fmt.Printf("  VOPC            %.2f\n\n", solo.VOPC())

	// Multithreaded machine: flo52 on thread 0, swm256 restarting as a
	// companion until it completes (the paper's Section 4.1 setup).
	// Group defaults to 1+len(companions) contexts.
	grouped, err := ses.Run(ctx, mtvec.Group(flo52, []*mtvec.Workload{swm256}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flo52 + swm256 on the 2-context multithreaded machine:\n")
	fmt.Printf("  cycles          %d (thread 0 ran %.1f%% slower than solo)\n",
		grouped.Cycles, 100*(float64(grouped.Cycles)/float64(solo.Cycles)-1))
	fmt.Printf("  mem occupation  %.1f%%\n", 100*grouped.MemOccupation())
	fmt.Printf("  VOPC            %.2f\n", grouped.VOPC())
	comp := grouped.Threads[1]
	fmt.Printf("  companion work  %d completions + %d instructions\n\n",
		comp.Completions, comp.PartialInsts)

	// The machine did flo52's work plus the companion's in barely more
	// time than flo52 alone — the paper's throughput argument.
	fmt.Printf("whole-machine throughput gain: the port went from %.0f%% to %.0f%% busy\n",
		100*solo.MemOccupation(), 100*grouped.MemOccupation())
}
