// Example regfile runs a miniature register-file organization study —
// the Section 8 machine-shape axes exposed by the arch layer — on a
// three-program job queue: vector register length and bank read ports,
// each at 1 and 2 hardware contexts.
//
// Workloads are rebuilt per register length, because a Convex-style
// compiler strip-mines loops by the hardware vector length: a machine
// with shorter registers also runs different code. Bank-port variants
// reuse the same code (ports are invisible to the compiler).
//
// The full study over all ten programs is experiment "ext-regfile":
//
//	go run ./cmd/mtvbench -exp ext-regfile
package main

import (
	"context"
	"fmt"
	"log"

	"mtvec"
)

const scale = 1e-4 // small workloads; the shape effects survive scaling

func main() {
	ctx := context.Background()
	ses := mtvec.NewSession()
	programs := []string{"tf", "sw", "hy"}
	contexts := []int{1, 2}

	fmt.Println("register-file organization study (3-program queue, latency 50)")
	fmt.Println()
	fmt.Printf("%-28s %8s %12s %12s\n", "organization", "contexts", "cycles", "vs ref")

	// Reference cycles per context count, for the relative column, and
	// one suite build per compiler-visible organization: context counts
	// and bank ports reuse the same compiled code.
	ref := make(map[int]int64)
	suites := make(map[mtvec.RegFile][]*mtvec.Workload)
	run := func(label string, rf mtvec.RegFile, nctx int) {
		ws, ok := suites[rf.BuildKey()]
		if !ok {
			var err error
			if ws, err = mtvec.BuildWorkloadsRegFile(programs, scale, 0, rf); err != nil {
				log.Fatal(err)
			}
			suites[rf.BuildKey()] = ws
		}
		rep, err := ses.Run(ctx, mtvec.Queue(ws,
			mtvec.WithRegFile(rf),
			mtvec.WithContexts(nctx),
			mtvec.WithMemLatency(50),
		))
		if err != nil {
			log.Fatal(err)
		}
		if _, ok := ref[nctx]; !ok {
			ref[nctx] = rep.Cycles
		}
		fmt.Printf("%-28s %8d %12d %12.4f\n", label, nctx, rep.Cycles,
			float64(rep.Cycles)/float64(ref[nctx]))
	}

	// The reference organization first (8 regs x 128 elements, 4 banks
	// with 2R/1W ports), then the register-length axis, then the
	// bank-port axis.
	for _, nctx := range contexts {
		run("8x128, 4 banks 2R/1W (ref)", mtvec.DefaultRegFile(), nctx)
	}
	for _, vlen := range []int{64, 256} {
		rf := mtvec.DefaultRegFile()
		rf.VLen = vlen
		for _, nctx := range contexts {
			run(fmt.Sprintf("8x%d, 4 banks 2R/1W", vlen), rf, nctx)
		}
	}
	for _, geom := range []struct {
		label   string
		perBank int
		rp      int
	}{
		{"8x128, 8 banks 1R/1W", 1, 1},
		{"8x128, 1 bank 2R/1W", 8, 2},
	} {
		rf := mtvec.DefaultRegFile()
		rf.VRegsPerBank, rf.BankReadPorts, rf.BankWritePorts = geom.perBank, geom.rp, 1
		for _, nctx := range contexts {
			run(geom.label, rf, nctx)
		}
	}

	fmt.Println()
	fmt.Println("presets: a whole machine shape is one value")
	for _, spec := range mtvec.ArchPresets() {
		fmt.Printf("  %-14s %2d vregs x %4d elements, %d banks %dR/%dW, %d+%d FUs\n",
			spec.Name, spec.VRegs, spec.VLen, spec.NumBanks(),
			spec.BankReadPorts, spec.BankWritePorts, spec.RestrictedFUs, spec.GeneralFUs)
	}
}
