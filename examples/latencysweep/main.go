// Latency sweep: how the ten-program suite's execution time responds to
// main-memory latency on the baseline and multithreaded machines — the
// experiment behind the paper's Figure 10 and its DRAM-vs-SRAM cost
// argument (Section 7).
package main

import (
	"context"
	"fmt"
	"log"

	"mtvec"
)

func main() {
	ctx := context.Background()
	// A memoizing session: the per-latency solo runs shared by rows are
	// simulated once each, and the sweep fans out over all cores.
	ses := mtvec.NewSession()
	const scale = 1e-4 // keep the example fast; raise for fidelity

	var suite []*mtvec.Workload
	for _, spec := range mtvec.QueueOrder() {
		w, err := spec.Build(scale)
		if err != nil {
			log.Fatal(err)
		}
		suite = append(suite, w)
	}
	ideal := mtvec.IdealCycles(suite...)

	fmt.Printf("%8s %12s %12s %12s %10s\n", "latency", "baseline", "2 threads", "4 threads", "IDEAL")
	for _, lat := range []int{1, 25, 50, 75, 100} {
		// Baseline: the programs one after another on one context, then
		// the 2- and 4-context job queues — one batch, run concurrently.
		var specs []mtvec.RunSpec
		for _, w := range suite {
			specs = append(specs, mtvec.Solo(w, mtvec.WithMemLatency(lat)))
		}
		for _, contexts := range []int{2, 4} {
			specs = append(specs, mtvec.Queue(suite,
				mtvec.WithMemLatency(lat), mtvec.WithContexts(contexts)))
		}
		reps, err := ses.RunAll(ctx, specs...)
		if err != nil {
			log.Fatal(err)
		}
		var baseline int64
		for _, rep := range reps[:len(suite)] {
			baseline += rep.Cycles
		}
		fmt.Printf("%8d %12d %12d %12d %10d\n",
			lat, baseline, reps[len(suite)].Cycles, reps[len(suite)+1].Cycles, ideal)
	}

	fmt.Println("\nThe baseline degrades almost linearly with latency; the")
	fmt.Println("multithreaded curves stay nearly flat — the paper's argument")
	fmt.Println("that slower, cheaper DRAM could replace SRAM in a multithreaded")
	fmt.Println("vector machine.")
}
