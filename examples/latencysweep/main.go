// Latency sweep: how the ten-program suite's execution time responds to
// main-memory latency on the baseline and multithreaded machines — the
// experiment behind the paper's Figure 10 and its DRAM-vs-SRAM cost
// argument (Section 7).
package main

import (
	"fmt"
	"log"

	"mtvec"
)

func main() {
	const scale = 1e-4 // keep the example fast; raise for fidelity

	var suite []*mtvec.Workload
	for _, spec := range mtvec.QueueOrder() {
		w, err := spec.Build(scale)
		if err != nil {
			log.Fatal(err)
		}
		suite = append(suite, w)
	}
	ideal := mtvec.IdealCycles(suite...)

	fmt.Printf("%8s %12s %12s %12s %10s\n", "latency", "baseline", "2 threads", "4 threads", "IDEAL")
	for _, lat := range []int{1, 25, 50, 75, 100} {
		cfg := mtvec.DefaultConfig()
		cfg.Mem.Latency = lat

		// Baseline: the programs one after another on one context.
		var baseline int64
		for _, w := range suite {
			rep, err := mtvec.RunSolo(w, cfg)
			if err != nil {
				log.Fatal(err)
			}
			baseline += rep.Cycles
		}

		row := []int64{baseline}
		for _, ctx := range []int{2, 4} {
			c := cfg
			c.Contexts = ctx
			rep, err := mtvec.RunQueue(suite, c)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, rep.Cycles)
		}
		fmt.Printf("%8d %12d %12d %12d %10d\n", lat, row[0], row[1], row[2], ideal)
	}

	fmt.Println("\nThe baseline degrades almost linearly with latency; the")
	fmt.Println("multithreaded curves stay nearly flat — the paper's argument")
	fmt.Println("that slower, cheaper DRAM could replace SRAM in a multithreaded")
	fmt.Println("vector machine.")
}
