package mtvec_test

import (
	"bytes"
	"strings"
	"testing"

	"mtvec"
)

const testScale = 1e-4

func build(t *testing.T, short string) *mtvec.Workload {
	t.Helper()
	w, err := mtvec.WorkloadByShort(short).Build(testScale)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRunSolo(t *testing.T) {
	w := build(t, "tf")
	rep, err := mtvec.RunSolo(w, mtvec.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles <= 0 || rep.Insts != w.Stats.Insts() {
		t.Fatalf("cycles=%d insts=%d (want %d)", rep.Cycles, rep.Insts, w.Stats.Insts())
	}
	if occ := rep.MemOccupation(); occ <= 0 || occ > 1 {
		t.Fatalf("occupation = %f", occ)
	}
}

func TestRunGroupSpeedsUp(t *testing.T) {
	tf, sw := build(t, "tf"), build(t, "sw")
	solo, err := mtvec.RunSolo(tf, mtvec.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := mtvec.DefaultConfig()
	cfg.Contexts = 2
	rep, err := mtvec.RunGroup(tf, []*mtvec.Workload{sw}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Thread 0 under the unfair policy completes near its solo time
	// while the machine does extra companion work.
	if rep.Cycles > solo.Cycles*3/2 {
		t.Fatalf("grouped run %d vs solo %d", rep.Cycles, solo.Cycles)
	}
	if rep.Threads[1].Dispatched == 0 {
		t.Fatal("companion idle")
	}
	// Mismatched contexts are rejected.
	if _, err := mtvec.RunGroup(tf, nil, cfg); err == nil {
		t.Fatal("bad context count accepted")
	}
}

func TestRunQueue(t *testing.T) {
	ws := []*mtvec.Workload{build(t, "tf"), build(t, "sd")}
	cfg := mtvec.DefaultConfig()
	cfg.Contexts = 2
	cfg.RecordSpans = true
	rep, err := mtvec.RunQueue(ws, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Spans) != 2 {
		t.Fatalf("spans = %d", len(rep.Spans))
	}
	if rep.Cycles < mtvec.IdealCycles(ws...) {
		t.Fatal("queue run beats the IDEAL bound")
	}
}

func TestCustomKernelEndToEnd(t *testing.T) {
	// A user-defined daxpy compiled and simulated via the public API.
	x := &mtvec.Array{Name: "x", Base: 0x10000, Stride: 8}
	y := &mtvec.Array{Name: "y", Base: 0x20000, Stride: 8}
	kern := &mtvec.Kernel{Name: "daxpy"}
	kern.Units = append(kern.Units, &mtvec.VectorLoop{
		Name: "daxpy",
		Body: []mtvec.Stmt{{
			Dst: y,
			E: &mtvec.Bin{Op: mtvec.Add,
				L: &mtvec.Bin{Op: mtvec.Mul, L: &mtvec.ScalarArg{Name: "a"}, R: &mtvec.Ref{Arr: x}},
				R: &mtvec.Ref{Arr: y}},
		}},
	})
	c, err := mtvec.CompileKernel(kern)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mtvec.RunCompiled(c, []mtvec.Invocation{{Unit: 0, N: 4096}}, mtvec.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.VectorOps < 4096 {
		t.Fatalf("vector ops = %d", rep.VectorOps)
	}
}

func TestTraceRoundTripViaFacade(t *testing.T) {
	w := build(t, "sd")
	var buf bytes.Buffer
	if err := mtvec.EncodeTrace(&buf, w.Trace); err != nil {
		t.Fatal(err)
	}
	tr, err := mtvec.DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Prog.Name != w.Trace.Prog.Name {
		t.Fatal("trace program name lost")
	}
}

func TestExperimentViaFacade(t *testing.T) {
	env := mtvec.NewEnv(testScale)
	exp := mtvec.ExperimentByID("table3")
	if exp == nil {
		t.Fatal("table3 missing")
	}
	res, err := exp.Run(env)
	if err != nil {
		t.Fatal(err)
	}
	var text, md bytes.Buffer
	if err := mtvec.RenderResult(&text, res); err != nil {
		t.Fatal(err)
	}
	if err := mtvec.RenderResultMarkdown(&md, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "swm256") || !strings.Contains(md.String(), "swm256") {
		t.Fatal("rendered output incomplete")
	}
}

func TestRegistryCoverage(t *testing.T) {
	if len(mtvec.Workloads()) != 10 {
		t.Fatal("want 10 workloads")
	}
	if len(mtvec.QueueOrder()) != 10 {
		t.Fatal("want 10 queue entries")
	}
	if len(mtvec.ExperimentIDs()) != len(mtvec.Experiments()) {
		t.Fatal("experiment id mismatch")
	}
	for _, n := range mtvec.PolicyNames() {
		if mtvec.PolicyByName(n) == nil {
			t.Fatalf("policy %s missing", n)
		}
	}
}
